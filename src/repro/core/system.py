"""The round-driven streaming system.

:class:`StreamingSystem` builds a complete overlay from a
:class:`~repro.core.config.SystemConfig` — synthetic trace topology, latency
and bandwidth models, Rendezvous Point, DHT peer tables — populates it with
either ContinuStreaming or CoolStreaming nodes, and advances the simulation
one scheduling period at a time:

1. the source generates this period's segments;
2. every node snapshots its buffer map (control-traffic cost accounted);
3. ContinuStreaming nodes run the Urgent-Line prediction on the
   start-of-period state (the on-demand retrieval runs *in parallel* with the
   data scheduler, which is what makes "repeated data" possible);
4. the data scheduler of every node plans its requests (Algorithm 1) and the
   transfers execute against per-period inbound/outbound budgets;
5. triggered nodes run the on-demand retrieval (Algorithm 2) over the DHT,
   the located segments are downloaded from their backup holders, and ``α``
   adapts from the overdue/repeated outcomes;
6. every node plays one period of media and the playback-continuity sample is
   recorded;
7. churn removes and adds nodes (dynamic environments only).

All randomness flows from the config seed through named
:class:`~repro.sim.rng.RngStreams`, so a ContinuStreaming run and a
CoolStreaming run with the same seed see the *same* topology, bandwidth
assignment and churn schedule — the comparison isolates the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.baseline import CoolStreamingNode
from repro.core.config import SystemConfig
from repro.core.continu import ContinuStreamingNode
from repro.core.node import StreamingNode
from repro.core.ondemand import OnDemandRetriever, PrefetchPlan
from repro.dht.peer_table import NeighborEntry
from repro.dht.ring import IdRing
from repro.dht.routing import GreedyRouter
from repro.membership.overhearing import OverhearingService
from repro.membership.rendezvous import RendezvousPoint
from repro.net.bandwidth import BandwidthModel
from repro.net.churn import ChurnProcess
from repro.net.latency import LatencyModel
from repro.net.message import (
    MessageKind,
    MessageLedger,
    RoundTrafficLog,
)
from repro.net.topology import OverlayTopology
from repro.net.trace import TraceTopologyGenerator, build_streaming_overlay
from repro.sim.rng import RngStreams
from repro.streaming.buffermap import BufferMap, buffer_map_bits
from repro.streaming.playback import ContinuityTracker
from repro.streaming.segment import Segment
from repro.streaming.source import MediaSource


@dataclass
class RoundReport:
    """What happened during one scheduling period (for tests and analysis)."""

    round_index: int
    time: float
    continuity: float
    nodes_playing: int
    nodes_total: int
    segments_scheduled: int
    segments_prefetched: int
    prefetch_triggers: int
    nodes_joined: int
    nodes_left: int


@dataclass
class SimulationResult:
    """Everything a run produces.

    Attributes:
        system: ``"continustreaming"`` or ``"coolstreaming"``.
        config: the configuration that produced the run.
        tracker: per-round playback-continuity series.
        traffic: per-round traffic ledgers (control / data / pre-fetch bits).
        rounds: per-round reports.
    """

    system: str
    config: SystemConfig
    tracker: ContinuityTracker
    traffic: RoundTrafficLog
    rounds: List[RoundReport] = field(default_factory=list)

    # ------------------------------------------------------------------ metrics
    def continuity_series(self) -> List[float]:
        """Playback continuity per round (Figures 5 and 6)."""
        return list(self.tracker.continuity)

    def stable_continuity(self, skip_rounds: Optional[int] = None) -> float:
        """Stable-phase playback continuity (Figures 7 and 8)."""
        return self.tracker.stable_phase_continuity(skip_rounds)

    def control_overhead(self) -> float:
        """Cumulative control overhead (Figure 9)."""
        return self.traffic.cumulative().control_overhead()

    def prefetch_overhead(self) -> float:
        """Cumulative pre-fetch overhead (Figures 10 and 11)."""
        return self.traffic.cumulative().prefetch_overhead()

    def prefetch_overhead_series(self) -> List[float]:
        """Per-round pre-fetch overhead (Figure 10)."""
        return self.traffic.prefetch_overhead_series()

    def control_overhead_series(self) -> List[float]:
        """Per-round control overhead."""
        return self.traffic.control_overhead_series()


class StreamingSystem:
    """Builds and runs one streaming overlay.

    Args:
        config: the run configuration.
        system: ``"continustreaming"`` (default) or ``"coolstreaming"``.
    """

    SYSTEMS = ("continustreaming", "coolstreaming")

    def __init__(self, config: SystemConfig, system: str = "continustreaming") -> None:
        if system not in self.SYSTEMS:
            raise ValueError(f"unknown system {system!r}; expected one of {self.SYSTEMS}")
        self.config = config
        self.system = system
        self.streams = RngStreams(seed=config.seed)
        self.ring = IdRing(config.effective_id_space)
        self.nodes: Dict[int, StreamingNode] = {}
        self.overlay = OverlayTopology()
        self.source_id: Optional[int] = None
        self.source = MediaSource(
            playback_rate=config.playback_rate, segment_bits=config.segment_bits
        )
        self.rendezvous = RendezvousPoint(ring=self.ring)
        self.rendezvous.seed_rng(self.streams.get("rendezvous"))
        self.bandwidth = BandwidthModel(
            mean_rate=config.mean_inbound,
            min_rate=config.min_inbound,
            max_rate=config.max_inbound,
            heterogeneous=config.heterogeneous,
            source_outbound=config.source_outbound,
        )
        self.latency: Optional[LatencyModel] = None
        self.churn = ChurnProcess(
            leave_fraction=config.leave_fraction,
            join_fraction=config.join_fraction,
        )
        self.tracker = ContinuityTracker(round_duration=config.scheduling_period)
        self.traffic = RoundTrafficLog()
        self.ledger = MessageLedger()
        self.reports: List[RoundReport] = []
        self.now = 0.0
        self.round_index = 0
        self.hop_latency_s = 0.05
        self.fetch_time_s = 0.4
        self.router = GreedyRouter(self.ring, self._routing_peers_of)
        self.overhearing = OverhearingService(
            latency_of=self._latency_ms, is_alive=self._is_alive
        )
        self._built = False

    # ======================================================================= build
    def build(self) -> "StreamingSystem":
        """Construct the overlay, models and nodes.  Idempotent."""
        if self._built:
            return self
        cfg = self.config
        trace_gen = TraceTopologyGenerator(seed=cfg.seed)
        trace = trace_gen.generate(cfg.num_nodes)

        # Ring ids come from the Rendezvous Point; trace index i -> ring id.
        ring_ids: List[int] = []
        for _ in range(cfg.num_nodes):
            ticket = self.rendezvous.admit()
            ring_ids.append(ticket.node_id)
        index_to_ring = {i: ring_ids[i] for i in range(cfg.num_nodes)}

        # Latency model keyed by ring id, ping times from the trace records.
        self.latency = LatencyModel(
            {index_to_ring[rec.node_id]: rec.ping_ms for rec in trace.records}
        )
        self.hop_latency_s = (
            cfg.hop_latency_ms / 1000.0
            if cfg.hop_latency_ms is not None
            else self.latency.mean_hop_latency_ms(
                sample_pairs=min(2000, cfg.num_nodes * 4),
                rng=self.streams.get("latency-estimate"),
            )
            / 1000.0
        )
        self.fetch_time_s = cfg.expected_fetch_time(self.hop_latency_s)

        # Streaming overlay: crawl graph densified to M neighbours, re-keyed
        # onto ring ids.
        dense = build_streaming_overlay(
            trace, cfg.connected_neighbors, self.streams.get("topology")
        )
        self.overlay = OverlayTopology(ring_ids)
        for a, b in dense.edges():
            self.overlay.add_edge(index_to_ring[a], index_to_ring[b])

        # The source is the node with the lowest ping time (closest to the
        # crawler / best connected), as good a stand-in as any.
        source_index = min(trace.records, key=lambda r: r.ping_ms).node_id
        self.source_id = index_to_ring[source_index]
        self.churn.protected.add(self.source_id)
        self.churn.reserve_ids(range(cfg.num_nodes))

        # Bandwidth assignment (paired across systems via the shared stream).
        self.bandwidth.assign(
            ring_ids, self.streams.get("bandwidth"), source_id=self.source_id
        )

        # Node objects.
        for ring_id in ring_ids:
            self.nodes[ring_id] = self._make_node(ring_id)

        # Connected neighbours: symmetric partnerships (buffer-map exchange is
        # mutual), ~M partners each, preferring low-latency overlay edges.
        self._install_partnerships()

        # DHT peer tables: loosely organised fingers over the joined ids.
        self._build_all_fingers()
        self._built = True
        return self

    def _make_node(self, ring_id: int) -> StreamingNode:
        cfg = self.config
        capacity = self.bandwidth.of(ring_id)
        is_source = ring_id == self.source_id
        if self.system == "continustreaming":
            node: StreamingNode = ContinuStreamingNode(
                ring_id,
                self.ring,
                buffer_capacity=cfg.buffer_capacity,
                playback_rate=cfg.playback_rate,
                period=cfg.scheduling_period,
                inbound_rate=capacity.inbound,
                outbound_rate=capacity.outbound,
                backup_replicas=cfg.backup_replicas,
                prefetch_limit=cfg.prefetch_limit,
                hop_latency=self.hop_latency_s,
                fetch_time=self.fetch_time_s,
                max_neighbors=cfg.connected_neighbors,
                overheard_capacity=cfg.overheard_capacity,
                playback_lag=cfg.playback_lag_segments,
                stall_on_miss=cfg.stall_on_miss,
                is_source=is_source,
            )
        else:
            node = CoolStreamingNode(
                ring_id,
                self.ring,
                buffer_capacity=cfg.buffer_capacity,
                playback_rate=cfg.playback_rate,
                period=cfg.scheduling_period,
                inbound_rate=capacity.inbound,
                outbound_rate=capacity.outbound,
                max_neighbors=cfg.connected_neighbors,
                overheard_capacity=cfg.overheard_capacity,
                playback_lag=cfg.playback_lag_segments,
                stall_on_miss=cfg.stall_on_miss,
                is_source=is_source,
            )
        node.join_time = self.now
        return node

    def _install_partnerships(self) -> None:
        """Build the connected-neighbour (partner) relation, symmetrically.

        The buffer-map exchange of Section 4.2 is mutual, so partnerships are
        undirected: every overlay edge ``(a, b)`` becomes a partnership when
        both endpoints still have a free slot, walking the edges in order of
        increasing latency (the paper replaces neighbours by low-latency
        overheard nodes, so low-latency edges are preferred).  A second pass
        tops up nodes that are still short of ``M`` partners with random
        partners, tolerating a slight overshoot on the other endpoint so that
        nobody is left isolated.
        """
        assert self.latency is not None
        edges = sorted(
            self.overlay.edges(),
            key=lambda edge: self._latency_ms(edge[0], edge[1]),
        )
        for a, b in edges:
            self._try_partner(a, b, allow_overflow=False)
        rng = self.streams.get("partners")
        all_ids = sorted(self.nodes)
        for nid in all_ids:
            node = self.nodes[nid]
            attempts = 0
            while node.peer_table.neighbor_slots_free() > 0 and attempts < 50:
                attempts += 1
                other = int(all_ids[int(rng.integers(len(all_ids)))])
                if other == nid or node.peer_table.has_neighbor(other):
                    continue
                self._try_partner(nid, other, allow_overflow=True)

    def _try_partner(self, a: int, b: int, allow_overflow: bool) -> bool:
        """Create the symmetric partnership ``a <-> b`` if slots permit."""
        node_a, node_b = self.nodes.get(a), self.nodes.get(b)
        if node_a is None or node_b is None or a == b:
            return False
        if node_a.peer_table.has_neighbor(b) or node_b.peer_table.has_neighbor(a):
            return False
        if node_a.peer_table.neighbor_slots_free() == 0:
            return False
        if node_b.peer_table.neighbor_slots_free() == 0 and not allow_overflow:
            return False
        latency = self._latency_ms(a, b)
        added_a = node_a.peer_table.add_neighbor(
            NeighborEntry(peer_id=b, latency_ms=latency)
        )
        if not added_a:
            return False
        if not node_b.peer_table.add_neighbor(
            NeighborEntry(peer_id=a, latency_ms=latency)
        ):
            # Overflow path: force the reciprocal entry so the relation stays
            # symmetric even when b is already at capacity.
            node_b.peer_table.neighbors[a] = NeighborEntry(peer_id=a, latency_ms=latency)
        self.overlay.add_edge(a, b)
        # Optimistic rate priors: a TCP pull takes whatever the supplier's
        # uplink has to spare; contention is enforced by the per-period
        # outbound budgets rather than pre-divided here.
        node_a.rate_controller.register_neighbor(b, node_b.outbound_rate, 1)
        node_b.rate_controller.register_neighbor(a, node_a.outbound_rate, 1)
        return True

    def _ensure_reciprocal(self, a: int, b: int) -> None:
        """Make sure the partnership ``a -> b`` also exists as ``b -> a``."""
        node_a, node_b = self.nodes.get(a), self.nodes.get(b)
        if node_a is None or node_b is None or a == b:
            return
        latency = self._latency_ms(a, b)
        if not node_b.peer_table.has_neighbor(a):
            entry = NeighborEntry(peer_id=a, latency_ms=latency)
            if not node_b.peer_table.add_neighbor(entry):
                node_b.peer_table.neighbors[a] = entry
            node_b.rate_controller.register_neighbor(a, node_a.outbound_rate, 1)
        if not node_a.peer_table.has_neighbor(b):
            entry = NeighborEntry(peer_id=b, latency_ms=latency)
            if not node_a.peer_table.add_neighbor(entry):
                node_a.peer_table.neighbors[b] = entry
            node_a.rate_controller.register_neighbor(b, node_b.outbound_rate, 1)
        self.overlay.add_edge(a, b)

    def _build_all_fingers(self) -> None:
        """Fill every node's DHT peers with random nodes from each level interval."""
        ids = np.asarray(sorted(self.nodes), dtype=np.int64)
        rng = self.streams.get("dht-fingers")
        for node in self.nodes.values():
            self._fill_fingers_for(node, ids, rng)

    def _fill_fingers_for(
        self, node: StreamingNode, sorted_ids: np.ndarray, rng: np.random.Generator
    ) -> None:
        owner = node.node_id
        for level in range(1, self.ring.bits + 1):
            start, end = self.ring.level_interval(owner, level)
            candidates = self._ids_in_interval(sorted_ids, start, end)
            if candidates.size == 0:
                continue
            peer = int(candidates[int(rng.integers(candidates.size))])
            if peer != owner:
                node.peer_table.set_dht_peer(peer, self._latency_ms(owner, peer))

    @staticmethod
    def _ids_in_interval(sorted_ids: np.ndarray, start: int, end: int) -> np.ndarray:
        if sorted_ids.size == 0 or start == end:
            return np.empty(0, dtype=np.int64)
        if start < end:
            lo = np.searchsorted(sorted_ids, start, side="left")
            hi = np.searchsorted(sorted_ids, end, side="left")
            return sorted_ids[lo:hi]
        lo = np.searchsorted(sorted_ids, start, side="left")
        hi = np.searchsorted(sorted_ids, end, side="left")
        return np.concatenate([sorted_ids[lo:], sorted_ids[:hi]])

    # ================================================================ small helpers
    def _latency_ms(self, a: int, b: int) -> float:
        if self.latency is None or a not in self.latency or b not in self.latency:
            return 50.0
        return self.latency.one_way_ms(a, b)

    def _is_alive(self, node_id: int) -> bool:
        node = self.nodes.get(node_id)
        return node is not None and node.alive

    def _routing_peers_of(self, node_id: int) -> Sequence[int]:
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return ()
        return [
            peer
            for peer in node.peer_table.routing_candidates()
            if self._is_alive(peer)
        ]

    def alive_node_ids(self, include_source: bool = True) -> List[int]:
        """Ids of the currently alive nodes."""
        ids = [nid for nid, node in self.nodes.items() if node.alive]
        if not include_source and self.source_id is not None:
            ids = [nid for nid in ids if nid != self.source_id]
        return sorted(ids)

    def node(self, node_id: int) -> StreamingNode:
        """Access a node by ring id."""
        return self.nodes[node_id]

    # ===================================================================== rounds
    def run(self, rounds: Optional[int] = None) -> SimulationResult:
        """Run the simulation for ``rounds`` periods (default: config.rounds)."""
        self.build()
        total = self.config.rounds if rounds is None else rounds
        for _ in range(total):
            self.step_round()
        return SimulationResult(
            system=self.system,
            config=self.config,
            tracker=self.tracker,
            traffic=self.traffic,
            rounds=self.reports,
        )

    def step_round(self) -> RoundReport:
        """Advance the simulation by one scheduling period."""
        self.build()
        cfg = self.config
        tau = cfg.scheduling_period
        round_start = self.now
        round_ledger = MessageLedger()
        rng = self.streams.get("round")

        # 1. The source generates this period's segments and buffers them.
        for segment in self.source.generate_until(round_start + tau):
            source_node = self.nodes[self.source_id]  # type: ignore[index]
            source_node.buffer.add(segment.segment_id)
        newest_id = self.source.newest_segment_id

        alive_ids = self.alive_node_ids()
        consumers = [nid for nid in alive_ids if nid != self.source_id]
        for nid in alive_ids:
            self.nodes[nid].begin_round()

        # 2. Buffer-map snapshots (start-of-period state).
        snapshots: Dict[int, BufferMap] = {
            nid: self.nodes[nid].buffer_map() for nid in alive_ids
        }

        # 3. Urgent-line predictions on the start-of-period state.
        predictions: Dict[int, List[int]] = {}
        prefetch_triggers = 0
        if self.system == "continustreaming":
            for nid in consumers:
                node = self.nodes[nid]
                assert isinstance(node, ContinuStreamingNode)
                prediction = node.predict_missed(newest_id)
                if prediction.triggered:
                    predictions[nid] = list(prediction.missed_segment_ids)
                    prefetch_triggers += 1

        # 4. Per-period bandwidth budgets.
        inbound_budget = {
            nid: self.nodes[nid].inbound_rate * tau for nid in alive_ids
        }
        outbound_budget = {
            nid: self.nodes[nid].outbound_rate * tau for nid in alive_ids
        }

        # 5. Data scheduling and transfers.
        segments_scheduled = self._scheduling_phase(
            consumers, snapshots, newest_id, inbound_budget, outbound_budget,
            round_ledger, rng,
        )

        # 6. On-demand retrieval (ContinuStreaming only).
        segments_prefetched = 0
        if predictions:
            segments_prefetched = self._prefetch_phase(
                predictions, inbound_budget, outbound_budget, round_ledger, rng,
                round_start,
            )

        # 7. Playback.
        playing = 0
        for nid in consumers:
            node = self.nodes[nid]
            if not node.playback.started:
                # Every node starts playback `playback_lag` behind the live
                # edge, which is exactly "following its neighbours' current
                # steps" since every neighbour maintains the same lag.
                node.maybe_start_playback(
                    cfg.startup_segments, newest_available_id=newest_id
                )
            if node.playback.started and node.can_play_round():
                playing += 1
            node.play_round(newest_available_id=newest_id)
        continuity = self.tracker.record_round(
            round_start + tau, playing, len(consumers)
        )

        # 8. Membership maintenance + churn.
        joined, left = self._churn_phase(rng, round_ledger)
        self._repair_neighbors()

        # 9. Bookkeeping.
        self.traffic.append(round_start + tau, round_ledger)
        self.ledger.merge(round_ledger)
        self.now = round_start + tau
        report = RoundReport(
            round_index=self.round_index,
            time=self.now,
            continuity=continuity,
            nodes_playing=playing,
            nodes_total=len(consumers),
            segments_scheduled=segments_scheduled,
            segments_prefetched=segments_prefetched,
            prefetch_triggers=prefetch_triggers,
            nodes_joined=joined,
            nodes_left=left,
        )
        self.reports.append(report)
        self.round_index += 1
        return report

    # -------------------------------------------------------------- round phases
    def _scheduling_phase(
        self,
        consumers: Sequence[int],
        snapshots: Mapping[int, BufferMap],
        newest_id: int,
        inbound_budget: Dict[int, float],
        outbound_budget: Dict[int, float],
        ledger: MessageLedger,
        rng: np.random.Generator,
    ) -> int:
        cfg = self.config
        map_bits = buffer_map_bits(cfg.buffer_capacity)
        delivered_total = 0
        order = list(consumers)
        rng.shuffle(order)
        for nid in order:
            node = self.nodes[nid]
            neighbor_maps = {
                nbr: snapshots[nbr] for nbr in node.neighbors if nbr in snapshots
            }
            # Control traffic: fetching the buffer map of each neighbour.
            if neighbor_maps:
                ledger.record(
                    MessageKind.BUFFER_MAP, map_bits * len(neighbor_maps),
                    count=len(neighbor_maps),
                )
            if not neighbor_maps or newest_id < 0:
                continue
            requests = node.plan_requests(
                neighbor_maps, newest_id, cfg.scheduling_window
            )
            # Only suppliers we actually request from get a rate observation;
            # a requested supplier that delivers nothing decays, the others
            # keep their estimate.
            delivered_per_neighbor: Dict[int, int] = {
                request.supplier_id: 0 for request in requests
            }
            for request in requests:
                supplier = request.supplier_id
                if inbound_budget.get(nid, 0.0) < 1.0:
                    break
                if outbound_budget.get(supplier, 0.0) < 1.0:
                    # The chosen supplier's uplink is saturated this period;
                    # re-request the segment from any other partner that
                    # advertises it and still has capacity (a pull protocol
                    # retries within the period rather than dropping the
                    # segment on the floor).
                    supplier = self._fallback_supplier(
                        request.segment_id, neighbor_maps, outbound_budget
                    )
                    if supplier is None:
                        continue
                inbound_budget[nid] -= 1.0
                outbound_budget[supplier] -= 1.0
                node.receive_segment(request.segment_id)
                self._consider_backup(node, request.segment_id)
                ledger.record(MessageKind.DATA_SCHEDULED, cfg.segment_bits)
                delivered_per_neighbor[supplier] = (
                    delivered_per_neighbor.get(supplier, 0) + 1
                )
                delivered_total += 1
            node.observe_deliveries(delivered_per_neighbor)
        return delivered_total

    @staticmethod
    def _fallback_supplier(
        segment_id: int,
        neighbor_maps: Mapping[int, BufferMap],
        outbound_budget: Mapping[int, float],
    ) -> Optional[int]:
        """Another partner that advertises ``segment_id`` and has uplink left."""
        best: Optional[int] = None
        best_budget = 1.0
        for neighbor_id, neighbor_map in neighbor_maps.items():
            if segment_id not in neighbor_map.present:
                continue
            budget = outbound_budget.get(neighbor_id, 0.0)
            if budget >= best_budget:
                best, best_budget = neighbor_id, budget
        return best

    def _prefetch_phase(
        self,
        predictions: Mapping[int, List[int]],
        inbound_budget: Dict[int, float],
        outbound_budget: Dict[int, float],
        ledger: MessageLedger,
        rng: np.random.Generator,
        round_start: float,
    ) -> int:
        cfg = self.config
        prefetched_total = 0
        order = list(predictions)
        rng.shuffle(order)
        for nid in order:
            node = self.nodes[nid]
            assert isinstance(node, ContinuStreamingNode)
            retriever = OnDemandRetriever(
                node_id=nid,
                router=self.router,
                replicas=cfg.backup_replicas,
                has_segment=self._holder_has_segment,
                available_rate=lambda holder: self._holder_rate(
                    holder, outbound_budget
                ),
            )
            plans = retriever.retrieve(predictions[nid])
            for plan in plans:
                ledger.record(
                    MessageKind.DHT_ROUTING,
                    plan.routing_bits(),
                    count=plan.routing_messages,
                )
                self._overhear_paths(plan)
                if plan.segment_id in node.buffer:
                    # The data scheduler delivered the segment while the DHT
                    # lookup was in flight — the paper's "repeated data" case.
                    # The routing cost was already paid; the duplicate
                    # download is skipped and the urgent ratio shrinks.
                    node.stats.prefetch_repeated += 1
                    node.urgent_line.record_repeated(1)
                    continue
                if not plan.located:
                    continue
                supplier = plan.supplier_id
                assert supplier is not None
                if inbound_budget.get(nid, 0.0) < 1.0:
                    continue
                if outbound_budget.get(supplier, 0.0) < 1.0:
                    continue
                inbound_budget[nid] -= 1.0
                outbound_budget[supplier] -= 1.0
                arrival = round_start + self.fetch_time_s
                deadline = node.deadline_of(plan.segment_id, now=round_start)
                node.receive_segment(plan.segment_id, prefetched=True)
                node.record_prefetch(plan.segment_id, arrival, deadline)
                self._consider_backup(node, plan.segment_id)
                ledger.record(MessageKind.DATA_PREFETCH, cfg.segment_bits)
                prefetched_total += 1
            # Settle at the end of the period: everything launched this period
            # has either met or missed its deadline by then.
            node.settle_prefetches(round_start + cfg.scheduling_period)
        return prefetched_total

    def _holder_has_segment(self, holder_id: int, segment_id: int) -> bool:
        node = self.nodes.get(holder_id)
        if node is None or not node.alive:
            return False
        if isinstance(node, ContinuStreamingNode):
            return node.serves_segment(segment_id)
        return node.has_segment(segment_id)

    def _holder_rate(
        self, holder_id: int, outbound_budget: Mapping[int, float]
    ) -> float:
        node = self.nodes.get(holder_id)
        if node is None or not node.alive:
            return 0.0
        return max(0.0, min(node.outbound_rate, outbound_budget.get(holder_id, 0.0)))

    def _overhear_paths(self, plan: PrefetchPlan) -> None:
        """Every node on a routing path overhears the other nodes on it."""
        for path in plan.routing_paths:
            for hop in path:
                node = self.nodes.get(hop)
                if node is None or not node.alive:
                    continue
                self.overhearing.overhear_path(node.peer_table, path, now=self.now)

    def _consider_backup(self, node: StreamingNode, segment_id: int) -> None:
        if not isinstance(node, ContinuStreamingNode):
            return
        segment = self.source.store.get(segment_id)
        if segment is None:
            segment = Segment(segment_id=segment_id, size_bits=self.config.segment_bits)
        node.consider_backup(segment)

    # --------------------------------------------------------------------- churn
    def _churn_phase(
        self, rng: np.random.Generator, ledger: MessageLedger
    ) -> tuple[int, int]:
        if self.churn.is_static:
            return 0, 0
        event = self.churn.step(
            self.round_index, self.alive_node_ids(), self.streams.get("churn")
        )
        for nid in event.leaving:
            self._remove_node(nid, rng)
        for _ in event.joining:
            self._admit_node(rng)
        return len(event.joining), len(event.leaving)

    def _remove_node(self, node_id: int, rng: np.random.Generator) -> None:
        node = self.nodes.get(node_id)
        if node is None or not node.alive or node_id == self.source_id:
            return
        graceful = rng.random() >= self.config.abrupt_leave_fraction
        if graceful and isinstance(node, ContinuStreamingNode):
            successor = self._counter_clockwise_closest(node_id)
            if successor is not None:
                succ_node = self.nodes.get(successor)
                if isinstance(succ_node, ContinuStreamingNode):
                    succ_node.absorb_handover(node.handover_backup())
        node.mark_departed()
        self.overlay.remove_node(node_id)
        if self.latency is not None:
            self.latency.remove_node(node_id)
        self.bandwidth.remove(node_id)
        self.rendezvous.report_failure(node_id)
        # Other nodes purge it lazily through the overhearing service's
        # is_alive checks during neighbour repair and routing.

    def _counter_clockwise_closest(self, node_id: int) -> Optional[int]:
        """The alive node counter-clockwise closest to ``node_id``."""
        best: Optional[int] = None
        best_dist: Optional[int] = None
        for other in self.alive_node_ids():
            if other == node_id:
                continue
            dist = self.ring.counter_clockwise_distance(node_id, other)
            if best_dist is None or dist < best_dist:
                best, best_dist = other, dist
        return best

    def _admit_node(self, rng: np.random.Generator) -> int:
        cfg = self.config
        ticket = self.rendezvous.admit()
        ring_id = ticket.node_id
        # Synthetic ping time for the newcomer, same distribution as the trace.
        ping_ms = float(np.clip(rng.lognormal(np.log(100.0), 0.6), 5.0, 1500.0))
        if self.latency is not None:
            self.latency.add_node(ring_id, ping_ms)
        self.bandwidth.assign_one(ring_id, self.streams.get("bandwidth"))
        self.overlay.add_node(ring_id)
        node = self._make_node(ring_id)
        node.join_time = self.now
        self.nodes[ring_id] = node

        # Contact the closest alive contacts (PING), adopt the nearest one's
        # peer table as a base, and wire up overlay edges.
        alive = self.alive_node_ids(include_source=True)
        contacts = [c for c in ticket.contacts if self._is_alive(c)]
        if not contacts and alive:
            contacts = [alive[int(rng.integers(len(alive)))]]
        if contacts:
            nearest = min(contacts, key=lambda c: self._latency_ms(ring_id, c))
            node.peer_table.adopt_base_table(self.nodes[nearest].peer_table)
        # Connected neighbours: contacts first, then random alive nodes.
        candidates = list(contacts)
        pool = [nid for nid in alive if nid != ring_id]
        if pool:
            extra = rng.choice(
                len(pool), size=min(len(pool), 3 * cfg.connected_neighbors),
                replace=False,
            )
            candidates.extend(pool[int(i)] for i in extra)
        self.overhearing.fill_neighbor_slots(node.peer_table, candidates)
        for nbr in node.neighbors:
            other = self.nodes.get(nbr)
            if other is not None:
                node.rate_controller.register_neighbor(nbr, other.outbound_rate, 1)
            self._ensure_reciprocal(ring_id, nbr)
        # DHT fingers for the newcomer (bootstrap + random fill).
        ids = np.asarray(alive + [ring_id], dtype=np.int64)
        ids.sort()
        self._fill_fingers_for(node, ids, self.streams.get("dht-fingers"))
        return ring_id

    def _repair_neighbors(self) -> None:
        """Drop dead neighbours and refill slots from overheard/alive nodes."""
        cfg = self.config
        rng = self.streams.get("repair")
        alive = self.alive_node_ids()
        if len(alive) <= 1:
            return
        for nid in alive:
            node = self.nodes[nid]
            table = node.peer_table
            for nbr in list(table.neighbor_ids()):
                if not self._is_alive(nbr):
                    replacement = self.overhearing.replace_failed_neighbor(table, nbr)
                    node.rate_controller.forget_neighbor(nbr)
                    if replacement is not None:
                        other = self.nodes.get(replacement)
                        if other is not None:
                            node.rate_controller.register_neighbor(
                                replacement, other.outbound_rate, 1
                            )
                        self._ensure_reciprocal(nid, replacement)
            self.overhearing.refresh(table)
            missing = table.neighbor_slots_free()
            if missing > 0:
                pool = [x for x in alive if x != nid and not table.has_neighbor(x)]
                if pool:
                    picks = rng.choice(
                        len(pool), size=min(len(pool), missing), replace=False
                    )
                    chosen = [pool[int(i)] for i in picks]
                    added = self.overhearing.fill_neighbor_slots(table, chosen)
                    for nbr in chosen[:added]:
                        other = self.nodes.get(nbr)
                        if other is not None:
                            node.rate_controller.register_neighbor(
                                nbr, other.outbound_rate, 1
                            )
                        self._ensure_reciprocal(nid, nbr)


def run_comparison(
    config: SystemConfig, systems: Sequence[str] = ("coolstreaming", "continustreaming")
) -> Dict[str, SimulationResult]:
    """Run both systems on the same seed/topology and return their results."""
    results: Dict[str, SimulationResult] = {}
    for system in systems:
        results[system] = StreamingSystem(config, system=system).run()
    return results
