"""The streaming-system facade: construction, clocking, results.

:class:`StreamingSystem` is a thin coordinator.  The heavy lifting lives in
three places it composes:

* the :class:`~repro.core.phases.registry.ProtocolRegistry` resolves the
  ``system`` name (``"continustreaming"``, ``"coolstreaming"``, or any
  registered third variant) to a protocol that knows how to build nodes and
  which :class:`~repro.core.phases.base.Phase` pipeline its rounds run;
* the :class:`~repro.core.overlay.OverlayManager` builds and maintains the
  overlay — trace topology, latency/bandwidth models, Rendezvous Point,
  partnerships, DHT fingers, churn-time admission/removal and repair;
* the discrete-event :class:`~repro.sim.engine.Simulator` is the single
  clock authority: every round is an event, start-of-period phases fire at
  ``round_start``, end-of-period phases (playback, churn) fire when the
  period elapses, and phases may schedule intra-round follow-up events such
  as delayed DHT fetch completions.

Each scheduling period, the facade builds one
:class:`~repro.core.phases.base.RoundContext`, threads it through the
pipeline, and turns the context's counters into a :class:`RoundReport`.
Custom pipelines (ablations, metric taps) plug in via the ``pipeline=``
argument without touching this module; see ``docs/architecture.md``.

All randomness flows from the config seed through named
:class:`~repro.sim.rng.RngStreams`, so a ContinuStreaming run and a
CoolStreaming run with the same seed see the *same* topology, bandwidth
assignment and churn schedule — the comparison isolates the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.node import StreamingNode
from repro.core.overlay import OverlayManager
from repro.core.phases import (
    END,
    START,
    Phase,
    ProtocolRegistry,
    RoundContext,
)
from repro.net.message import MessageLedger, RoundTrafficLog
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.streaming.playback import ContinuityTracker
from repro.streaming.source import MediaSource


@dataclass
class RoundReport:
    """What happened during one scheduling period (for tests and analysis)."""

    round_index: int
    time: float
    continuity: float
    nodes_playing: int
    nodes_total: int
    segments_scheduled: int
    segments_prefetched: int
    prefetch_triggers: int
    nodes_joined: int
    nodes_left: int


@dataclass
class SimulationResult:
    """Everything a run produces.

    Attributes:
        system: the protocol name the run used (e.g. ``"continustreaming"``).
        config: the configuration that produced the run.
        tracker: per-round playback-continuity series.
        traffic: per-round traffic ledgers (control / data / pre-fetch bits).
        rounds: per-round reports.
    """

    system: str
    config: SystemConfig
    tracker: ContinuityTracker
    traffic: RoundTrafficLog
    rounds: List[RoundReport] = field(default_factory=list)

    # ------------------------------------------------------------------ metrics
    def continuity_series(self) -> List[float]:
        """Playback continuity per round (Figures 5 and 6)."""
        return list(self.tracker.continuity)

    def stable_continuity(self, skip_rounds: Optional[int] = None) -> float:
        """Stable-phase playback continuity (Figures 7 and 8)."""
        return self.tracker.stable_phase_continuity(skip_rounds)

    def control_overhead(self) -> float:
        """Cumulative control overhead (Figure 9)."""
        return self.traffic.cumulative().control_overhead()

    def prefetch_overhead(self) -> float:
        """Cumulative pre-fetch overhead (Figures 10 and 11)."""
        return self.traffic.cumulative().prefetch_overhead()

    def prefetch_overhead_series(self) -> List[float]:
        """Per-round pre-fetch overhead (Figure 10)."""
        return self.traffic.prefetch_overhead_series()

    def control_overhead_series(self) -> List[float]:
        """Per-round control overhead."""
        return self.traffic.control_overhead_series()


class StreamingSystem:
    """Builds and runs one streaming overlay.

    Args:
        config: the run configuration.
        system: a protocol name known to the
            :class:`~repro.core.phases.registry.ProtocolRegistry`
            (``"continustreaming"`` by default).
        pipeline: optional phase sequence replacing the protocol's default —
            the hook experiments use to insert taps or ablate phases.
    """

    #: The paper's two systems (kept for backwards compatibility; the
    #: authoritative list is ``ProtocolRegistry.names()``).
    SYSTEMS = ("continustreaming", "coolstreaming")

    def __init__(
        self,
        config: SystemConfig,
        system: str = "continustreaming",
        pipeline: Optional[Sequence[Phase]] = None,
    ) -> None:
        self.config = config
        self.system = system
        self.protocol = ProtocolRegistry.get(system)
        self.streams = RngStreams(seed=config.seed)
        self.source = MediaSource(
            playback_rate=config.playback_rate, segment_bits=config.segment_bits
        )
        self.manager = OverlayManager(config=config, streams=self.streams)
        self.manager.node_factory = (
            lambda ring_id: self.protocol.make_node(self.manager, ring_id)
        )
        self.pipeline: Tuple[Phase, ...] = tuple(
            pipeline if pipeline is not None else self.protocol.build_pipeline()
        )
        for phase in self.pipeline:
            if phase.timing not in (START, END):
                raise ValueError(
                    f"phase {phase.name!r} has invalid timing {phase.timing!r}; "
                    f"expected {START!r} or {END!r}"
                )
        self.sim = Simulator()
        self.tracker = ContinuityTracker(round_duration=config.scheduling_period)
        self.traffic = RoundTrafficLog()
        self.ledger = MessageLedger()
        self.reports: List[RoundReport] = []
        self.round_index = 0

    # ======================================================================= build
    def build(self) -> "StreamingSystem":
        """Construct the overlay, models and nodes.  Idempotent."""
        self.manager.build()
        return self

    # ===================================================== facade / compatibility
    @property
    def now(self) -> float:
        """Current simulated time (the event engine is the clock authority)."""
        return self.sim.now

    @property
    def nodes(self) -> Dict[int, StreamingNode]:
        """All node objects, alive and departed, keyed by ring id."""
        return self.manager.nodes

    @property
    def source_id(self) -> Optional[int]:
        """Ring id of the media source (``None`` before :meth:`build`)."""
        return self.manager.source_id

    @property
    def ring(self):
        """The DHT identifier ring."""
        return self.manager.ring

    @property
    def overlay(self):
        """The overlay topology graph."""
        return self.manager.overlay

    @property
    def latency(self):
        """The latency model (``None`` before :meth:`build`)."""
        return self.manager.latency

    @property
    def bandwidth(self):
        """The bandwidth model."""
        return self.manager.bandwidth

    @property
    def churn(self):
        """The churn process."""
        return self.manager.churn

    @property
    def rendezvous(self):
        """The Rendezvous Point."""
        return self.manager.rendezvous

    @property
    def overhearing(self):
        """The overhearing-based peer-table maintenance service."""
        return self.manager.overhearing

    @property
    def router(self):
        """The greedy DHT router."""
        return self.manager.router

    @property
    def hop_latency_s(self) -> float:
        """Mean one-hop latency ``t_hop`` in seconds."""
        return self.manager.hop_latency_s

    @property
    def fetch_time_s(self) -> float:
        """Expected DHT fetch time ``t_fetch`` in seconds (eq. (7))."""
        return self.manager.fetch_time_s

    def alive_node_ids(self, include_source: bool = True) -> List[int]:
        """Ids of the currently alive nodes."""
        return self.manager.alive_node_ids(include_source=include_source)

    def node(self, node_id: int) -> StreamingNode:
        """Access a node by ring id."""
        return self.manager.nodes[node_id]

    # ===================================================================== rounds
    def run(self, rounds: Optional[int] = None) -> SimulationResult:
        """Run the simulation for ``rounds`` periods (default: config.rounds).

        Every round is an event on the discrete-event engine: the commit
        event of round *i* schedules round *i + 1*, so a single
        ``Simulator.run()`` drains the whole simulation.
        """
        self.build()
        total = self.config.rounds if rounds is None else rounds
        if total > 0:
            self._schedule_round(self.sim.now, remaining=total)
            self.sim.run()
        return SimulationResult(
            system=self.system,
            config=self.config,
            tracker=self.tracker,
            traffic=self.traffic,
            rounds=self.reports,
        )

    def step_round(self) -> RoundReport:
        """Advance the simulation by exactly one scheduling period."""
        self.build()
        self._schedule_round(self.sim.now, remaining=1)
        self.sim.run()
        return self.reports[-1]

    # ------------------------------------------------------------- event plumbing
    def _schedule_round(self, round_start: float, remaining: int) -> None:
        ctx = self._new_round_context(round_start)
        self.sim.schedule_at(round_start, self._round_begin, (ctx, remaining))

    def _new_round_context(self, round_start: float) -> RoundContext:
        assert self.manager.source_id is not None, "build() must run first"
        return RoundContext(
            config=self.config,
            protocol=self.system,
            round_index=self.round_index,
            round_start=round_start,
            period=self.config.scheduling_period,
            rng=self.streams.get("round"),
            ledger=MessageLedger(),
            nodes=self.manager.nodes,
            source=self.source,
            source_id=self.manager.source_id,
            sim=self.sim,
            tracker=self.tracker,
            manager=self.manager,
        )

    def _round_begin(self, sim: Simulator, payload: Any) -> None:
        """Start-of-period event: run the ``start`` phases, arm the commit."""
        ctx, remaining = payload
        for phase in self.pipeline:
            if phase.timing != END:
                ctx.phase_reports.append(phase.execute(ctx))
        # Scheduled after the start phases so intra-round follow-up events
        # (e.g. DHT fetches landing exactly at period end) run first.
        sim.schedule_at(ctx.round_end, self._round_commit, (ctx, remaining))

    def _round_commit(self, sim: Simulator, payload: Any) -> None:
        """End-of-period event: ``end`` phases, bookkeeping, next round."""
        ctx, remaining = payload
        for phase in self.pipeline:
            if phase.timing == END:
                ctx.phase_reports.append(phase.execute(ctx))
        self.traffic.append(ctx.round_end, ctx.ledger)
        self.ledger.merge(ctx.ledger)
        report = RoundReport(
            round_index=ctx.round_index,
            time=ctx.round_end,
            continuity=ctx.continuity,
            nodes_playing=ctx.nodes_playing,
            nodes_total=len(ctx.consumers),
            segments_scheduled=ctx.segments_scheduled,
            segments_prefetched=ctx.segments_prefetched,
            prefetch_triggers=ctx.prefetch_triggers,
            nodes_joined=ctx.nodes_joined,
            nodes_left=ctx.nodes_left,
        )
        self.reports.append(report)
        self.round_index += 1
        if remaining > 1:
            self._schedule_round(sim.now, remaining - 1)


def run_comparison(
    config: SystemConfig, systems: Sequence[str] = ("coolstreaming", "continustreaming")
) -> Dict[str, SimulationResult]:
    """Run both systems on the same seed/topology and return their results."""
    results: Dict[str, SimulationResult] = {}
    for system in systems:
        results[system] = StreamingSystem(config, system=system).run()
    return results
