"""On-demand data retrieval (Algorithm 2).

For each predicted-missed segment ``D_i`` the node sends ``k`` routing
messages in parallel, one per backup key ``hash(id · i) % N``; every message
terminates at the node counter-clockwise closest to its key — the backup
holder.  Among the holders that actually have the segment, the one with the
highest available sending rate becomes the on-demand supplier, and the
segment is downloaded directly (UDP) in parallel with the other pre-fetches.

Cost accounting mirrors Section 5.4.3: locating one segment requires about
``k · (log2(n)/2 + 1) + 1`` routing messages of 80 bits, plus the 30 Kbit
segment transfer.  The expected completion latency is
``t_fetch ≈ (log2(n)/2 + 3) · t_hop`` (equation (7)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.dht.hashing import backup_keys
from repro.dht.routing import GreedyRouter, RouteOutcome
from repro.net.message import ROUTING_MESSAGE_BITS


@dataclass(frozen=True)
class PrefetchPlan:
    """The outcome of locating one missed segment on the DHT.

    Attributes:
        segment_id: the missed segment.
        supplier_id: chosen backup holder, or ``None`` if no reachable holder
            has the segment.
        routing_messages: DHT routing messages spent on the location step.
        routing_paths: one routing path per backup key (for overhearing).
        holders_probed: holders actually reached by routing.
        holders_with_data: how many of them had the segment.
    """

    segment_id: int
    supplier_id: Optional[int]
    routing_messages: int
    routing_paths: tuple[tuple[int, ...], ...]
    holders_probed: int
    holders_with_data: int

    @property
    def located(self) -> bool:
        return self.supplier_id is not None

    def routing_bits(self) -> int:
        """Total routing traffic of the location step, in bits."""
        return self.routing_messages * ROUTING_MESSAGE_BITS


@dataclass
class OnDemandRetriever:
    """Runs Algorithm 2 for one node.

    Args:
        node_id: the requesting node.
        router: greedy DHT router over the live peer tables.
        replicas: ``k``.
        has_segment: callable ``(holder_id, segment_id) -> bool`` telling
            whether a holder can serve the segment (from its VoD backup or
            its playback buffer).
        available_rate: callable ``holder_id -> float`` returning the
            holder's available sending rate in segments/s (used to pick the
            best supplier, and 0 excludes a holder).
    """

    node_id: int
    router: GreedyRouter
    replicas: int
    has_segment: Callable[[int, int], bool]
    available_rate: Callable[[int], float]
    id_space: int = 0
    last_plans: List[PrefetchPlan] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.id_space <= 0:
            self.id_space = self.router.ring.size

    # ------------------------------------------------------------------- lookup
    def locate(self, segment_id: int) -> PrefetchPlan:
        """Locate the best on-demand supplier for one segment."""
        keys = backup_keys(segment_id, self.replicas, self.id_space)
        routing_messages = 0
        paths: List[tuple[int, ...]] = []
        best_supplier: Optional[int] = None
        best_rate = 0.0
        holders_probed = 0
        holders_with_data = 0
        seen_holders: set[int] = set()
        for key in keys:
            outcome: RouteOutcome = self.router.route(self.node_id, key)
            # Each hop of the walk is one routing message; the final reply
            # back to the requester is one more (the "+1" of Section 5.4.3).
            routing_messages += max(1, outcome.hops) + 1
            paths.append(outcome.path)
            holder = outcome.final_node
            if holder is None or holder == self.node_id:
                continue
            if holder in seen_holders:
                continue
            seen_holders.add(holder)
            holders_probed += 1
            if not self.has_segment(holder, segment_id):
                continue
            holders_with_data += 1
            rate = self.available_rate(holder)
            if rate > best_rate:
                best_rate = rate
                best_supplier = holder
        return PrefetchPlan(
            segment_id=segment_id,
            supplier_id=best_supplier,
            routing_messages=routing_messages,
            routing_paths=tuple(paths),
            holders_probed=holders_probed,
            holders_with_data=holders_with_data,
        )

    def retrieve(self, missed_segment_ids: Sequence[int]) -> List[PrefetchPlan]:
        """Run the location step for every missed segment (ascending id order).

        The caller is responsible for enforcing the ``N_miss ≤ l`` trigger
        condition (the :class:`~repro.core.urgent_line.UrgentLine` does) and
        for executing the actual downloads against bandwidth budgets.
        """
        plans = [self.locate(sid) for sid in sorted(missed_segment_ids)]
        self.last_plans = plans
        return plans

    # -------------------------------------------------------------------- costs
    @staticmethod
    def expected_routing_messages(replicas: int, num_nodes: int) -> float:
        """Section 5.4.3 estimate: ``k · (log2(n)/2 + 1) + 1`` messages."""
        import math

        n = max(2, num_nodes)
        return replicas * (math.log2(n) / 2.0 + 1.0) + 1.0

    @staticmethod
    def expected_fetch_bits(
        replicas: int, num_nodes: int, segment_bits: int
    ) -> float:
        """Estimated total cost of pre-fetching one segment, in bits."""
        return (
            OnDemandRetriever.expected_routing_messages(replicas, num_nodes)
            * ROUTING_MESSAGE_BITS
            + segment_bits
        )
