"""The ContinuStreaming node.

Adds to the base node everything Section 4 describes on top of the
CoolStreaming-style gossip pull:

* the urgency + rarity priority (inherited via the ``"continustreaming"``
  scheduling policy of :class:`~repro.core.scheduler.DataScheduler`),
* the :class:`~repro.core.urgent_line.UrgentLine` predictor with its
  adaptively tuned urgent ratio ``α``,
* the :class:`~repro.core.backup.VodBackupStore` holding the segments this
  node must back up for the DHT (equation (5)), and
* the bookkeeping that drives the on-demand retrieval (Algorithm 2): which
  segments were pre-fetched, whether they arrived overdue, and whether they
  later turned out to be *repeated* (also delivered by the scheduler).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.backup import VodBackupStore
from repro.core.node import StreamingNode
from repro.core.urgent_line import MissPrediction, UrgentLine
from repro.dht.ring import IdRing
from repro.streaming.segment import Segment


class ContinuStreamingNode(StreamingNode):
    """A node running the full ContinuStreaming protocol."""

    POLICY = "continustreaming"
    SUPPORTS_PREFETCH = True

    def __init__(
        self,
        node_id: int,
        ring: IdRing,
        *,
        buffer_capacity: int,
        playback_rate: float,
        period: float,
        inbound_rate: float,
        outbound_rate: float,
        backup_replicas: int,
        prefetch_limit: int,
        hop_latency: float,
        fetch_time: float,
        max_neighbors: int = 5,
        overheard_capacity: int = 20,
        playback_lag: Optional[int] = None,
        stall_on_miss: bool = True,
        is_source: bool = False,
    ) -> None:
        super().__init__(
            node_id,
            ring,
            buffer_capacity=buffer_capacity,
            playback_rate=playback_rate,
            period=period,
            inbound_rate=inbound_rate,
            outbound_rate=outbound_rate,
            max_neighbors=max_neighbors,
            overheard_capacity=overheard_capacity,
            playback_lag=playback_lag,
            stall_on_miss=stall_on_miss,
            is_source=is_source,
        )
        self.urgent_line = UrgentLine(
            buffer_capacity=buffer_capacity,
            playback_rate=playback_rate,
            period=period,
            hop_latency=hop_latency,
            fetch_time=fetch_time,
            prefetch_limit=prefetch_limit,
        )
        self.backup = VodBackupStore(
            node_id=self.node_id, ring=ring, replicas=backup_replicas
        )
        #: pre-fetches in flight: segment id -> (arrival time, playback deadline)
        self._prefetch_arrivals: Dict[int, tuple[float, float]] = {}

    # --------------------------------------------------------------- urgent line
    def predict_missed(
        self, newest_available_id: int, exclude_scheduled: bool = False
    ) -> MissPrediction:
        """Run the urgent-line prediction for this round.

        The reference point (``id_head`` in equation (4)) is the playback
        position once playback has started — the buffer head trails it by
        construction — and the buffer head before that.

        The prediction normally runs *in parallel* with the data scheduler
        (both look at the start-of-period buffer state), which is what allows
        "repeated data" to occur and drive ``α`` down; pass
        ``exclude_scheduled=True`` to ablate that behaviour.
        """
        head = (
            self.playback.play_id if self.playback.started else self.buffer.head_id
        )
        return self.urgent_line.predict(
            head_id=head,
            held_ids=self.buffer.id_set(),
            newest_available_id=newest_available_id,
            already_scheduled=self.pending_requests if exclude_scheduled else (),
        )

    # ------------------------------------------------------------------ backups
    def consider_backup(self, segment: Segment) -> bool:
        """Store ``segment`` in the VoD backup if equation (5) says so."""
        successor = self.peer_table.closest_dht_peer()
        return self.backup.maybe_store(segment, successor)

    def serves_segment(self, segment_id: int) -> bool:
        """True if this node can serve ``segment_id`` to an on-demand request.

        A holder can answer from its VoD backup *or* from its playback buffer
        (the paper's case analysis only rules out segments it never received).
        """
        return segment_id in self.backup or segment_id in self.buffer

    # ----------------------------------------------------------------- pre-fetch
    def deadline_of(self, segment_id: int, now: float) -> float:
        """Wall-clock playback deadline of ``segment_id`` for this node.

        The segment is needed when the playback pointer reaches it, i.e.
        ``(segment_id - play_id) / p`` seconds from now (a segment the pointer
        has already passed is due immediately).
        """
        if not self.playback.started:
            return now + self.period
        return now + max(0.0, (segment_id - self.playback.play_id) / self.playback_rate)

    def record_prefetch(
        self, segment_id: int, arrival_time: float, deadline: float
    ) -> None:
        """Note a pre-fetch in flight: it completes at ``arrival_time`` and the
        player needs the segment by ``deadline``."""
        self.stats.prefetch_attempts += 1
        self._prefetch_arrivals[segment_id] = (float(arrival_time), float(deadline))

    def pending_prefetches(self) -> List[int]:
        """Segment ids with a pre-fetch currently in flight."""
        return sorted(self._prefetch_arrivals)

    def settle_prefetches(self, now: float) -> tuple[int, int]:
        """Resolve completed pre-fetches and adapt ``α``.

        Returns ``(overdue, repeated)`` counts for this settlement:

        * *overdue* — the pre-fetch completed after the segment's playback
          deadline (Case 1 of the α update: enlarge the urgent region);
        * *repeated* — the segment was also delivered by the data scheduler
          before its deadline (Case 2: shrink the urgent region).
        """
        overdue = 0
        repeated = 0
        settled: List[int] = []
        for segment_id, (arrival, deadline) in self._prefetch_arrivals.items():
            if arrival > now:
                continue  # still in flight
            settled.append(segment_id)
            if segment_id in self.scheduled_deliveries:
                repeated += 1
                continue
            if arrival > deadline:
                overdue += 1
        for segment_id in settled:
            del self._prefetch_arrivals[segment_id]
        self.stats.prefetch_overdue += overdue
        self.stats.prefetch_repeated += repeated
        self.urgent_line.update(overdue=overdue, repeated=repeated)
        return overdue, repeated

    def available_sending_rate(self, outbound_budget_left: float) -> float:
        """Sending rate this node can offer an on-demand requester right now."""
        return max(0.0, min(self.outbound_rate, outbound_budget_left))

    # ------------------------------------------------------------------ handover
    def handover_backup(self) -> List[Segment]:
        """Graceful-leave handover: the stored backups to pass counter-clockwise."""
        return self.backup.handover_contents()

    def absorb_handover(self, segments: List[Segment]) -> int:
        """Absorb the backup store of a departing predecessor."""
        return self.backup.absorb_handover(segments)
