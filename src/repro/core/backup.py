"""VoD Data Backup store.

Every node stores, in addition to its playback buffer, the data segments it
is *responsible* to back up (equation (5)): segment ``id`` belongs to node
``n`` iff ``hash(id · i) % N ∈ [n, n1)`` for some ``i = 1..k``, where ``n1``
is ``n``'s clockwise-closest DHT peer.  Other nodes can retrieve those
segments through the DHT for as long as the node is alive.

On a graceful leave, the node hands its backup store over to the node
counter-clockwise closest to it; on an abrupt failure nothing is handed over
— old backups gradually become useless and the counter-clockwise neighbour
takes over responsibility for new segments, as the paper argues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.dht.hashing import backup_keys
from repro.dht.ring import IdRing
from repro.streaming.segment import Segment, SegmentStore


@dataclass
class VodBackupStore:
    """Backup responsibility and storage for one node.

    Attributes:
        node_id: ring id of the owning node.
        ring: the identifier ring.
        replicas: ``k``, number of backup copies per segment.
    """

    node_id: int
    ring: IdRing
    replicas: int
    store: SegmentStore = field(default_factory=SegmentStore)

    # ----------------------------------------------------------- responsibility
    def is_responsible(self, segment_id: int, successor_id: Optional[int]) -> bool:
        """True if this node must back up ``segment_id``.

        Args:
            successor_id: the node's clockwise-closest DHT peer (``n1``); when
                the node knows no DHT peer it conservatively takes
                responsibility for everything it receives (it may be alone).
        """
        if successor_id is None or successor_id == self.node_id:
            return True
        for key in backup_keys(segment_id, self.replicas, self.ring.size):
            if self.ring.in_clockwise_interval(key, self.node_id, successor_id):
                return True
        return False

    def maybe_store(
        self, segment: Segment, successor_id: Optional[int]
    ) -> bool:
        """Store ``segment`` if this node is responsible for it.

        Returns True when the segment was (already or newly) stored.
        """
        if segment.segment_id in self.store:
            return True
        if not self.is_responsible(segment.segment_id, successor_id):
            return False
        self.store.add(segment)
        return True

    def force_store(self, segment: Segment) -> None:
        """Store a segment regardless of responsibility (handover path)."""
        self.store.add(segment)

    # ----------------------------------------------------------------- queries
    def __contains__(self, segment_id: int) -> bool:
        return segment_id in self.store

    def __len__(self) -> int:
        return len(self.store)

    def get(self, segment_id: int) -> Optional[Segment]:
        """The backed-up segment, or ``None``."""
        return self.store.get(segment_id)

    def ids(self) -> List[int]:
        """Sorted ids of the backed-up segments."""
        return self.store.ids()

    # --------------------------------------------------------------- lifecycle
    def handover_contents(self) -> List[Segment]:
        """Return (and keep) everything stored, for a graceful-leave handover.

        The departing node sends these to the node counter-clockwise closest
        to it; the caller is responsible for delivering them.
        """
        return [self.store.get(sid) for sid in self.store.ids()]  # type: ignore[misc]

    def absorb_handover(self, segments: Iterable[Segment]) -> int:
        """Accept segments handed over by a departing predecessor."""
        count = 0
        for segment in segments:
            self.store.add(segment)
            count += 1
        return count

    def prune_expired(self, oldest_useful_id: int) -> int:
        """Drop backups older than ``oldest_useful_id`` (past every deadline)."""
        return self.store.prune_older_than(oldest_useful_id)

    def total_bits(self) -> int:
        """Total stored payload size in bits."""
        return self.store.total_bits()
