"""Base streaming node.

A :class:`StreamingNode` owns everything in Figure 1 of the paper that is
common to both systems: the Peer Table (via the P2P Overlay Manager), the
playback Buffer, the Data Scheduler and the Rate Controller.  The
CoolStreaming baseline and the ContinuStreaming node specialise the
scheduling policy and (for ContinuStreaming) add the Urgent Line, the
on-demand retrieval and the VoD Data Backup.

The node is a passive state machine: the :class:`~repro.core.system.
StreamingSystem` drives it round by round and enforces global bandwidth
budgets; the node only *decides* (which segments to request from whom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

import numpy as np

from repro.core.rate_controller import RateController
from repro.core.scheduler import (
    DataScheduler,
    ScheduledRequest,
    SegmentCandidate,
    SupplierOffer,
)
from repro.dht.peer_table import PeerTable
from repro.dht.ring import IdRing
from repro.streaming.buffer import SegmentBuffer
from repro.streaming.buffermap import BufferMap
from repro.streaming.playback import PlaybackState


@dataclass
class NodeStats:
    """Lifetime counters of one node (exposed for metrics and tests)."""

    segments_scheduled: int = 0
    segments_received_scheduled: int = 0
    segments_received_prefetch: int = 0
    prefetch_attempts: int = 0
    prefetch_overdue: int = 0
    prefetch_repeated: int = 0
    rounds_participated: int = 0


class StreamingNode:
    """Common node state and behaviour.

    Args:
        node_id: ring identifier of the node.
        ring: the identifier ring shared by the overlay.
        buffer_capacity: ``B``.
        playback_rate: ``p``.
        period: scheduling period ``τ``.
        inbound_rate / outbound_rate: bandwidth capacities in segments/s.
        max_neighbors: ``M``.
        overheard_capacity: ``H``.
        policy: scheduling policy name passed to :class:`DataScheduler`.
        is_source: True only for the media source node.
    """

    #: scheduling policy used by this node class (overridden by subclasses)
    POLICY = "continustreaming"

    def __init__(
        self,
        node_id: int,
        ring: IdRing,
        *,
        buffer_capacity: int,
        playback_rate: float,
        period: float,
        inbound_rate: float,
        outbound_rate: float,
        max_neighbors: int = 5,
        overheard_capacity: int = 20,
        playback_lag: Optional[int] = None,
        stall_on_miss: bool = True,
        policy: Optional[str] = None,
        is_source: bool = False,
    ) -> None:
        self.node_id = int(node_id)
        self.ring = ring
        self.is_source = bool(is_source)
        self.inbound_rate = float(inbound_rate)
        self.outbound_rate = float(outbound_rate)
        self.buffer = SegmentBuffer(capacity=buffer_capacity)
        self.playback = PlaybackState(
            playback_rate=playback_rate, stall_on_miss=stall_on_miss
        )
        self.peer_table = PeerTable(
            owner_id=self.node_id,
            ring=ring,
            max_neighbors=max_neighbors,
            max_overheard=overheard_capacity,
        )
        self.rate_controller = RateController(
            local_inbound=self.inbound_rate, period=period
        )
        self.scheduler = DataScheduler(
            playback_rate=playback_rate,
            buffer_capacity=buffer_capacity,
            period=period,
            policy=policy or self.POLICY,
            tiebreak_rng=np.random.default_rng(0xC0FFEE ^ self.node_id),
        )
        self.period = float(period)
        self.playback_rate = float(playback_rate)
        segments_per_round = max(1, int(round(playback_rate * period)))
        self.playback_lag = (
            int(playback_lag) if playback_lag is not None else 5 * segments_per_round
        )
        self.stats = NodeStats()
        self.alive = True
        self.join_time = 0.0
        #: segment ids requested this round via gossip scheduling (reset per round)
        self.pending_requests: set[int] = set()
        #: segment ids delivered by the data scheduler this round (reset per round)
        self.scheduled_deliveries: set[int] = set()
        #: segment ids received via pre-fetch, tagged so repeated-data detection works
        self.prefetch_tagged: set[int] = set()

    # ------------------------------------------------------------------ identity
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = type(self).__name__
        return f"<{kind} id={self.node_id} play={self.playback.play_id}>"

    @property
    def neighbors(self) -> List[int]:
        """Ids of the connected (gossip) neighbours."""
        return self.peer_table.neighbor_ids()

    # ----------------------------------------------------------------- buffering
    def buffer_map(self) -> BufferMap:
        """Snapshot of the local buffer advertised to neighbours."""
        return BufferMap.from_buffer(self.buffer)

    def has_segment(self, segment_id: int) -> bool:
        """True if the playback buffer holds the segment."""
        return segment_id in self.buffer

    def receive_segment(self, segment_id: int, *, prefetched: bool = False) -> bool:
        """Store a delivered segment; returns False if it was already expired."""
        accepted = self.buffer.add(segment_id)
        if accepted:
            if prefetched:
                self.stats.segments_received_prefetch += 1
                self.prefetch_tagged.add(segment_id)
            else:
                self.stats.segments_received_scheduled += 1
                self.scheduled_deliveries.add(segment_id)
        return accepted

    def begin_round(self) -> None:
        """Reset the per-round bookkeeping before a new scheduling period."""
        self.pending_requests = set()
        self.scheduled_deliveries = set()
        self.stats.rounds_participated += 1

    # ----------------------------------------------------------------- playback
    def maybe_start_playback(
        self,
        startup_segments: int,
        follow_id: Optional[int] = None,
        newest_available_id: Optional[int] = None,
    ) -> bool:
        """Start playback once enough data is buffered.

        The node buffers ``startup_segments`` first (the startup delay of
        CoolStreaming-style systems) and then begins playback at its *oldest*
        buffered segment.  Because the pre-playback fetch window is anchored
        ``playback_lag`` behind the live edge, the oldest buffered segment of
        a newly joined node sits near its neighbours' current playback
        position — so starting there is "following the neighbours' current
        steps" — and a node that took longer to fill its startup buffer
        automatically starts with a proportionally larger safety lag.
        An explicit ``follow_id`` overrides the start position (but is never
        allowed closer to the live edge than ``startup_segments``).

        Returns True when playback is (now) running.
        """
        if self.playback.started or self.is_source:
            return self.playback.started
        if len(self.buffer) < max(1, startup_segments):
            return False
        oldest = self.buffer.oldest_id()
        if oldest is None:
            return False
        start_at = oldest
        if follow_id is not None:
            start_at = follow_id
        if newest_available_id is not None:
            start_at = min(start_at, newest_available_id - startup_segments)
            if start_at < 0:
                return False  # the stream is younger than the startup delay
        self.playback.start(max(0, start_at))
        return True

    def play_round(self, newest_available_id: Optional[int] = None) -> bool:
        """Consume one round of playback; returns True if it was continuous.

        A node that has stalled so long that it trails the live edge by more
        than its buffer can hold performs a catch-up skip (seeks back to the
        usual playback lag behind the live edge), exactly as a real viewer
        would rejoin the live position.
        """
        if not self.playback.started:
            return False
        if newest_available_id is not None:
            max_lag = self.buffer.capacity - self.playback.segments_per_round(self.period)
            if newest_available_id - self.playback.play_id > max_lag:
                self.playback.skip_forward_to(newest_available_id - self.playback_lag)
        continuous = self.playback.advance_round(
            self.buffer, self.period, newest_available_id
        )
        # Keep the FIFO window from falling behind the playback point by more
        # than the buffer capacity (old segments are useless once played).
        min_head = self.playback.play_id - self.buffer.capacity + 1
        if min_head > self.buffer.head_id:
            self.buffer.advance_head(min_head)
        return continuous

    def can_play_round(self) -> bool:
        """True if the next round of playback would be continuous."""
        return self.playback.can_play_round(self.buffer, self.period)

    # --------------------------------------------------------------- scheduling
    def interest_window(self, newest_available_id: int, window: int) -> tuple[int, int]:
        """The id range ``[lo, hi]`` the scheduler cares about this round.

        A playing node cares about everything from its playback point onward;
        a node that has not started yet targets the region ``playback_lag``
        behind the live edge (a new node "follows its neighbours' current
        steps" rather than chasing the beginning of the stream).
        """
        if self.playback.started:
            lo = self.playback.play_id
        else:
            lo = max(0, newest_available_id - self.playback_lag)
        hi = min(newest_available_id, lo + max(1, window) - 1)
        return lo, hi

    def build_candidates(
        self,
        neighbor_maps: Mapping[int, BufferMap],
        newest_available_id: int,
        window: int,
    ) -> List[SegmentCandidate]:
        """Collect the fresh segments offered by the connected neighbours.

        A segment is *fresh* when some neighbour advertises it, the local
        buffer does not hold it, and it falls inside the interest window.
        """
        lo, hi = self.interest_window(newest_available_id, window)
        if hi < lo:
            return []
        rates = {
            neighbor_id: self.rate_controller.rate_of(neighbor_id)
            for neighbor_id in neighbor_maps
        }
        candidates: List[SegmentCandidate] = []
        for segment_id in range(lo, hi + 1):
            if segment_id in self.buffer:
                continue
            offers: List[SupplierOffer] = []
            for neighbor_id, neighbor_map in neighbor_maps.items():
                if segment_id in neighbor_map.present:
                    offers.append(
                        SupplierOffer(
                            supplier_id=neighbor_id,
                            position_from_tail=neighbor_map.position_from_tail(
                                segment_id
                            ),
                            rate=rates[neighbor_id],
                        )
                    )
            if offers:
                candidates.append(
                    SegmentCandidate(segment_id=segment_id, offers=tuple(offers))
                )
        return candidates

    def plan_requests(
        self,
        neighbor_maps: Mapping[int, BufferMap],
        newest_available_id: int,
        window: int,
    ) -> List[ScheduledRequest]:
        """Run the data-scheduling algorithm for this round."""
        candidates = self.build_candidates(neighbor_maps, newest_available_id, window)
        play_ref = (
            self.playback.play_id if self.playback.started else self.buffer.head_id
        )
        requests = self.scheduler.schedule(candidates, play_ref, self.inbound_rate)
        self.pending_requests = {req.segment_id for req in requests}
        self.stats.segments_scheduled += len(requests)
        return requests

    def observe_deliveries(self, delivered_per_neighbor: Mapping[int, int]) -> None:
        """Feed this round's per-neighbour delivery counts to the rate controller."""
        self.rate_controller.observe_round(dict(delivered_per_neighbor))
        for neighbor_id, count in delivered_per_neighbor.items():
            self.peer_table.record_supply(neighbor_id, count / self.period)

    # ------------------------------------------------------------------- churn
    def mark_departed(self) -> None:
        """The node left the overlay (graceful or not)."""
        self.alive = False
