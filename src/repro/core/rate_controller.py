"""Per-neighbour receive-rate estimation.

The Rate Controller module of the node architecture (Figure 1) "monitors and
estimates the receiving rate from each connected neighbour".  Its estimates
feed both the urgency computation (equation (1) uses the best receiving rate
``R_i`` of a segment) and Algorithm 1's expected transfer times
``t_trans = 1 / R(S_ij)``.

The estimator keeps an exponentially weighted moving average of the segments
actually delivered by each neighbour per scheduling period, seeded with an
optimistic prior of ``min(local inbound, neighbour outbound / M)`` so that a
fresh neighbour is tried rather than starved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class RateController:
    """Tracks the usable receiving rate from each connected neighbour.

    Attributes:
        local_inbound: local inbound capacity in segments/s.
        period: the scheduling period in seconds (observations are per period).
        smoothing: EWMA smoothing factor in (0, 1]; higher = more reactive.
        min_rate: floor on any estimate to avoid division by zero in
            ``1 / R`` computations.
    """

    local_inbound: float
    period: float = 1.0
    smoothing: float = 0.5
    min_rate: float = 0.1
    _estimates: Dict[int, float] = field(default_factory=dict)
    _priors: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.local_inbound < 0:
            raise ValueError("local_inbound must be >= 0")
        if not (0 < self.smoothing <= 1):
            raise ValueError("smoothing must be in (0, 1]")
        if self.period <= 0:
            raise ValueError("period must be positive")

    # ------------------------------------------------------------------ priors
    def register_neighbor(
        self, neighbor_id: int, neighbor_outbound: float, fan_out: int
    ) -> float:
        """Initialise the estimate for a new neighbour.

        The prior assumes the neighbour splits its outbound rate evenly across
        the ``fan_out`` nodes that actually pull from it, capped by our own
        inbound capacity.  The running estimate never drops below this prior:
        a neighbour that delivered little recently must not be written off —
        the capacity is still there, only the availability was missing — and
        actual uplink contention is resolved by the system's per-period
        bandwidth budgets rather than by pessimistic estimates.
        """
        prior = min(
            self.local_inbound if self.local_inbound > 0 else neighbor_outbound,
            neighbor_outbound / max(1, fan_out),
        )
        prior = max(self.min_rate, prior)
        self._priors[neighbor_id] = prior
        self._estimates.setdefault(neighbor_id, prior)
        return self._estimates[neighbor_id]

    def forget_neighbor(self, neighbor_id: int) -> None:
        """Drop the estimate of a departed/replaced neighbour."""
        self._estimates.pop(neighbor_id, None)
        self._priors.pop(neighbor_id, None)

    def _floor_for(self, neighbor_id: int) -> float:
        return max(self.min_rate, self._priors.get(neighbor_id, self.min_rate))

    # ------------------------------------------------------------ observations
    def observe_round(self, delivered: Dict[int, int]) -> None:
        """Fold one period's deliveries into the estimates.

        Args:
            delivered: mapping neighbour id -> segments received from it this
                period, **for the neighbours we actually requested from** (a
                requested neighbour that delivered nothing should appear with
                a count of 0 so its estimate decays).  Neighbours we did not
                ask anything of keep their current estimate — otherwise a
                node would write off all its neighbours during the start-up
                phase when nobody has data yet.
        """
        for neighbor_id, count in delivered.items():
            if neighbor_id not in self._estimates:
                continue
            observed = count / self.period
            old = self._estimates[neighbor_id]
            new = (1 - self.smoothing) * old + self.smoothing * observed
            self._estimates[neighbor_id] = max(self._floor_for(neighbor_id), new)

    # ----------------------------------------------------------------- queries
    def rate_of(self, neighbor_id: int) -> float:
        """Estimated receiving rate from ``neighbor_id`` (segments/s)."""
        return self._estimates.get(neighbor_id, self.min_rate)

    def known_neighbors(self) -> list[int]:
        """Neighbour ids with an estimate (sorted)."""
        return sorted(self._estimates)

    def best_rate(self, neighbor_ids: Optional[list[int]] = None) -> float:
        """Highest estimated rate among ``neighbor_ids`` (or all known)."""
        ids = self.known_neighbors() if neighbor_ids is None else neighbor_ids
        rates = [self.rate_of(n) for n in ids]
        return max(rates) if rates else self.min_rate

    def total_estimated_inbound(self) -> float:
        """Sum of estimates, capped by the local inbound capacity."""
        total = sum(self._estimates.values())
        if self.local_inbound > 0:
            return min(total, self.local_inbound)
        return total
