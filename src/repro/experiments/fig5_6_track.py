"""Figures 5 and 6 — playback-continuity tracks over the first 30 seconds.

The paper tracks the system-wide playback continuity of CoolStreaming and
ContinuStreaming for the first 30 seconds after the stream starts, with 1000
nodes and a single source:

* Figure 5 (static): CoolStreaming enters its stable phase around 26 s at a
  continuity of roughly 0.83; ContinuStreaming around 18 s at roughly 0.97.
* Figure 6 (dynamic, 5 % joins + 5 % leaves per period): roughly 0.78 vs
  0.95, with ContinuStreaming's improvement larger than in the static case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.system import StreamingSystem


@dataclass(frozen=True)
class TrackResult:
    """Continuity track of one system in one environment."""

    system: str
    dynamic: bool
    times: tuple[float, ...]
    continuity: tuple[float, ...]
    stable_continuity: float
    time_to_stable: Optional[float]

    def as_series(self) -> Dict[str, List[float]]:
        return {"time": list(self.times), "continuity": list(self.continuity)}


def run_continuity_track(
    num_nodes: int = 1000,
    rounds: int = 30,
    dynamic: bool = False,
    seed: int = 0,
    base_config: Optional[SystemConfig] = None,
    stable_threshold_ratio: float = 0.95,
) -> Dict[str, TrackResult]:
    """Reproduce Figure 5 (``dynamic=False``) or Figure 6 (``dynamic=True``).

    Returns a mapping ``{"coolstreaming": ..., "continustreaming": ...}``.
    ``time_to_stable`` is the first time the track reaches
    ``stable_threshold_ratio`` of its stable-phase value, which is how we
    quantify the paper's "enters its stable phase in X seconds".
    """
    config = base_config or SystemConfig(num_nodes=num_nodes, rounds=rounds, seed=seed)
    if config.num_nodes != num_nodes or config.rounds != rounds:
        config = config.scaled(num_nodes, rounds)
    if dynamic:
        config = config.dynamic_variant()
    else:
        config = config.static_variant()

    results: Dict[str, TrackResult] = {}
    for system in ("coolstreaming", "continustreaming"):
        run = StreamingSystem(config, system=system).run()
        stable = run.stable_continuity()
        threshold = stable * stable_threshold_ratio
        results[system] = TrackResult(
            system=system,
            dynamic=dynamic,
            times=tuple(run.tracker.times),
            continuity=tuple(run.tracker.continuity),
            stable_continuity=stable,
            time_to_stable=run.tracker.time_to_reach(threshold),
        )
    return results


def format_track(results: Dict[str, TrackResult]) -> str:
    """Plain-text rendering of a Figure 5/6 run."""
    lines = []
    for system, result in results.items():
        env = "dynamic" if result.dynamic else "static"
        lines.append(
            f"{system} ({env}): stable continuity {result.stable_continuity:.3f}, "
            f"reaches stable phase at "
            f"{result.time_to_stable if result.time_to_stable is not None else 'n/a'} s"
        )
        track = ", ".join(f"{value:.2f}" for value in result.continuity)
        lines.append(f"  track: [{track}]")
    return "\n".join(lines)
