"""Figure 3 — DHT routing hops and query success rate.

The paper evaluates the loosely organised DHT in isolation: with an id space
of ``N = 8192`` and ``n`` joined nodes (``n`` swept up to 8000), it reports

* the average number of routing hops per lookup, observed to be very close
  to ``log2(n) / 2``, and
* the query success rate, very close to 1.0 even when the ring is sparse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.theory import expected_dht_lookup_hops
from repro.dht.network import DhtNetwork

#: Node counts used by the paper's sweep (n < N = 8192).
PAPER_NODE_COUNTS: Sequence[int] = (500, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000)

#: A scaled-down sweep for CI / benchmarks.
SMALL_NODE_COUNTS: Sequence[int] = (100, 250, 500, 1000)


@dataclass(frozen=True)
class Fig3Point:
    """One point of the Figure 3 curves."""

    num_nodes: int
    id_space: int
    average_hops: float
    success_rate: float
    expected_hops: float  # the paper's log2(n)/2 reference line

    def as_row(self) -> dict:
        return {
            "n": self.num_nodes,
            "avg_hops": self.average_hops,
            "success_rate": self.success_rate,
            "log2(n)/2": self.expected_hops,
        }


def run_fig3_dht(
    node_counts: Optional[Sequence[int]] = None,
    id_space: int = 8192,
    lookups_per_size: int = 2000,
    seed: int = 0,
) -> List[Fig3Point]:
    """Reproduce Figure 3.

    Args:
        node_counts: sizes to sweep (defaults to the paper's sweep).
        id_space: size of the identifier space (paper: 8192).
        lookups_per_size: random lookups per population size.
        seed: RNG seed.
    """
    counts = list(node_counts or PAPER_NODE_COUNTS)
    points: List[Fig3Point] = []
    for index, num_nodes in enumerate(counts):
        rng = np.random.default_rng(seed + index)
        network = DhtNetwork(id_space=id_space, rng=rng)
        network.populate(num_nodes)
        result = network.run_random_lookups(lookups_per_size, rng=rng)
        points.append(
            Fig3Point(
                num_nodes=num_nodes,
                id_space=id_space,
                average_hops=result.average_hops,
                success_rate=result.success_rate,
                expected_hops=expected_dht_lookup_hops(num_nodes),
            )
        )
    return points


def format_fig3(points: Sequence[Fig3Point]) -> str:
    """Plain-text rendering of the Figure 3 data."""
    lines = [f"{'n':>6} | {'avg hops':>9} | {'log2(n)/2':>9} | {'success':>8}"]
    lines.append("-" * len(lines[0]))
    for point in points:
        lines.append(
            f"{point.num_nodes:>6} | {point.average_hops:>9.2f} | "
            f"{point.expected_hops:>9.2f} | {point.success_rate:>8.3f}"
        )
    return "\n".join(lines)
