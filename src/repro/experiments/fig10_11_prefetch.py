"""Figures 10 and 11 — pre-fetch overhead.

The pre-fetch overhead is the ratio of (DHT routing traffic + pre-fetched
data traffic) to the real data traffic of the scheduling path; it is the
*extra* cost ContinuStreaming adds over CoolStreaming.  The paper reports:

* Figure 10 — the per-round track for a 1000-node network: almost zero in
  the first seconds (most nodes miss more than ``l`` segments, so the
  pre-fetch does not trigger), a bump once every node knows the source, and
  a stable phase around 0.023 (static) / 0.03 (dynamic).
* Figure 11 — the stable-phase value versus overlay size: below 0.04
  everywhere, higher in dynamic environments than static ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import stable_phase_mean
from repro.core.config import SystemConfig
from repro.core.system import StreamingSystem

#: Overlay sizes of the paper's Figure 11 sweep.
PAPER_SIZES: Sequence[int] = (100, 500, 1000, 2000, 4000, 8000)

#: Scaled-down defaults for CI / benchmarks.
SMALL_SIZES: Sequence[int] = (50, 100, 200)


@dataclass(frozen=True)
class PrefetchOverheadPoint:
    """Stable-phase pre-fetch overhead of one (size, environment) pair."""

    num_nodes: int
    dynamic: bool
    prefetch_overhead: float

    def as_dict(self) -> dict:
        return {
            "n": self.num_nodes,
            "dynamic": self.dynamic,
            "prefetch_overhead": self.prefetch_overhead,
        }


@dataclass(frozen=True)
class PrefetchTrack:
    """Per-round pre-fetch overhead of one environment (Figure 10)."""

    dynamic: bool
    times: tuple[float, ...]
    overhead: tuple[float, ...]
    stable_overhead: float


def run_prefetch_overhead_track(
    num_nodes: int = 1000,
    rounds: int = 30,
    seed: int = 0,
    base_config: Optional[SystemConfig] = None,
) -> Dict[str, PrefetchTrack]:
    """Reproduce Figure 10: the static and dynamic per-round tracks."""
    results: Dict[str, PrefetchTrack] = {}
    for label, dynamic in (("static", False), ("dynamic", True)):
        config = (base_config or SystemConfig(num_nodes=num_nodes, rounds=rounds,
                                              seed=seed)).scaled(num_nodes, rounds)
        config = config.dynamic_variant() if dynamic else config.static_variant()
        run = StreamingSystem(config, system="continustreaming").run()
        series = run.prefetch_overhead_series()
        results[label] = PrefetchTrack(
            dynamic=dynamic,
            times=tuple(run.traffic.times),
            overhead=tuple(series),
            stable_overhead=stable_phase_mean(series),
        )
    return results


def run_prefetch_overhead_scale(
    sizes: Optional[Sequence[int]] = None,
    rounds: int = 30,
    seed: int = 0,
    base_config: Optional[SystemConfig] = None,
) -> List[PrefetchOverheadPoint]:
    """Reproduce Figure 11: stable-phase pre-fetch overhead vs overlay size."""
    sweep = list(sizes or PAPER_SIZES)
    points: List[PrefetchOverheadPoint] = []
    for num_nodes in sweep:
        for dynamic in (False, True):
            config = (base_config or SystemConfig(num_nodes=num_nodes, rounds=rounds,
                                                  seed=seed)).scaled(num_nodes, rounds)
            config = config.dynamic_variant() if dynamic else config.static_variant()
            run = StreamingSystem(config, system="continustreaming").run()
            points.append(
                PrefetchOverheadPoint(
                    num_nodes=num_nodes,
                    dynamic=dynamic,
                    prefetch_overhead=stable_phase_mean(
                        run.prefetch_overhead_series()
                    ),
                )
            )
    return points


def format_prefetch_scale(points: Sequence[PrefetchOverheadPoint]) -> str:
    """Plain-text rendering of the Figure 11 data."""
    header = f"{'n':>6} | {'environment':>11} | {'pre-fetch overhead':>18}"
    lines = [header, "-" * len(header)]
    for point in points:
        env = "dynamic" if point.dynamic else "static"
        lines.append(
            f"{point.num_nodes:>6} | {env:>11} | {point.prefetch_overhead:>18.4f}"
        )
    return "\n".join(lines)
