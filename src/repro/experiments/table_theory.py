"""Section 5.1 table — theoretical vs simulated playback continuity.

The paper compares the Poisson model of Section 5.1 (``PC_old``, ``PC_new``
and their difference ``Δ``) against four simulated environments with 1000
nodes, ``p = 10``, mean inbound ``I = 15``, ``τ = 1`` s and ``k = 4``:

* theoretical result with λ = 15,
* theoretical result with λ = 14,
* homogeneous + static,
* homogeneous + dynamic,
* heterogeneous + static,
* heterogeneous + dynamic.

``PC_old`` corresponds to the CoolStreaming run (no pre-fetch) and
``PC_new`` to the ContinuStreaming run of the same environment; ``Δ`` is the
continuity increment brought by the DHT-assisted pre-fetch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.analysis.theory import (
    playback_continuity_delta,
    playback_continuity_new,
    playback_continuity_old,
)
from repro.core.config import SystemConfig
from repro.core.system import StreamingSystem


@dataclass(frozen=True)
class TheoryRow:
    """One row of the Section 5.1 comparison table."""

    environment: str
    pc_old: float
    pc_new: float

    @property
    def delta(self) -> float:
        return self.pc_new - self.pc_old

    def as_dict(self) -> dict:
        return {
            "environment": self.environment,
            "PC_old": self.pc_old,
            "PC_new": self.pc_new,
            "delta": self.delta,
        }


def theoretical_rows(
    playback_rate: float = 10.0,
    period: float = 1.0,
    replicas: int = 4,
    arrival_rates: tuple[float, ...] = (15.0, 14.0),
) -> List[TheoryRow]:
    """The analytic rows of the table (equations (13)-(15))."""
    rows = []
    for arrival_rate in arrival_rates:
        rows.append(
            TheoryRow(
                environment=f"theory λ={arrival_rate:g}",
                pc_old=playback_continuity_old(arrival_rate, playback_rate, period),
                pc_new=playback_continuity_new(
                    arrival_rate, playback_rate, period, replicas
                ),
            )
        )
    return rows


def simulated_row(
    environment: str,
    config: SystemConfig,
) -> TheoryRow:
    """Run both systems on one environment and report PC_old / PC_new."""
    old = StreamingSystem(config, system="coolstreaming").run()
    new = StreamingSystem(config, system="continustreaming").run()
    return TheoryRow(
        environment=environment,
        pc_old=old.stable_continuity(),
        pc_new=new.stable_continuity(),
    )


def run_theory_table(
    base_config: Optional[SystemConfig] = None,
    include_theory: bool = True,
    churn_fraction: float = 0.05,
) -> List[TheoryRow]:
    """Reproduce the Section 5.1 table.

    Args:
        base_config: configuration of the simulated rows; defaults to 1000
            nodes with the paper's parameters (pass a smaller ``num_nodes``
            for a quick run).
        include_theory: include the analytic λ = 15 / λ = 14 rows.
        churn_fraction: per-round churn of the dynamic environments.
    """
    config = base_config or SystemConfig(num_nodes=1000, rounds=40)
    rows: List[TheoryRow] = []
    if include_theory:
        rows.extend(
            theoretical_rows(
                playback_rate=config.playback_rate,
                period=config.scheduling_period,
                replicas=config.backup_replicas,
                arrival_rates=(config.mean_inbound, config.mean_inbound - 1.0),
            )
        )
    environments = [
        ("homogeneous static", replace(config, heterogeneous=False)),
        (
            "homogeneous dynamic",
            replace(
                config,
                heterogeneous=False,
                leave_fraction=churn_fraction,
                join_fraction=churn_fraction,
            ),
        ),
        ("heterogeneous static", replace(config, heterogeneous=True)),
        (
            "heterogeneous dynamic",
            replace(
                config,
                heterogeneous=True,
                leave_fraction=churn_fraction,
                join_fraction=churn_fraction,
            ),
        ),
    ]
    for name, env_config in environments:
        rows.append(simulated_row(name, env_config))
    return rows


def format_theory_table(rows: List[TheoryRow]) -> str:
    """Plain-text rendering of the table."""
    header = f"{'environment':<24} | {'PC_old':>7} | {'PC_new':>7} | {'delta':>7}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.environment:<24} | {row.pc_old:>7.4f} | {row.pc_new:>7.4f} | "
            f"{row.delta:>7.4f}"
        )
    return "\n".join(lines)


def paper_reference_rows() -> List[TheoryRow]:
    """The values printed in the paper, for side-by-side comparison."""
    return [
        TheoryRow("theory λ=15", 0.8815, 0.9989),
        TheoryRow("theory λ=14", 0.8243, 0.9975),
        TheoryRow("homogeneous static", 0.8748, 0.9979),
        TheoryRow("homogeneous dynamic", 0.8520, 0.9803),
        TheoryRow("heterogeneous static", 0.8431, 0.9726),
        TheoryRow("heterogeneous dynamic", 0.8166, 0.9537),
    ]
