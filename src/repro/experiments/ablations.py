"""Ablation experiments for the design choices called out in DESIGN.md.

These are not figures from the paper; they quantify the contribution of the
individual mechanisms ContinuStreaming layers on top of the CoolStreaming
baseline:

* scheduling policy — urgency+rarity (equations (1)-(3)) vs rarest-first;
* the adaptive urgent ratio ``α`` vs a fixed one;
* the number of backup replicas ``k`` (the analytic per-segment pre-fetch
  failure probability is ``(½)^k``);
* the per-period pre-fetch cap ``l``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.system import StreamingSystem


@dataclass(frozen=True)
class AblationPoint:
    """One configuration of an ablation sweep."""

    name: str
    stable_continuity: float
    prefetch_overhead: float
    control_overhead: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "stable_continuity": self.stable_continuity,
            "prefetch_overhead": self.prefetch_overhead,
            "control_overhead": self.control_overhead,
        }


def _run(name: str, config: SystemConfig, system: str) -> AblationPoint:
    run = StreamingSystem(config, system=system).run()
    return AblationPoint(
        name=name,
        stable_continuity=run.stable_continuity(),
        prefetch_overhead=run.prefetch_overhead(),
        control_overhead=run.control_overhead(),
    )


def run_priority_ablation(
    base_config: Optional[SystemConfig] = None,
) -> List[AblationPoint]:
    """Scheduling-policy ablation.

    Compares the CoolStreaming baseline, ContinuStreaming with its pre-fetch
    disabled (scheduler-only effect) and the full ContinuStreaming system, on
    the same topology/seed.
    """
    config = base_config or SystemConfig(num_nodes=200, rounds=30)
    return [
        _run("coolstreaming (rarest-first)", config, "coolstreaming"),
        _run(
            "continustreaming scheduler only (no pre-fetch)",
            replace(config, prefetch_limit=0),
            "continustreaming",
        ),
        _run("continustreaming full", config, "continustreaming"),
    ]


def run_replica_ablation(
    replica_counts: Sequence[int] = (1, 2, 4, 8),
    base_config: Optional[SystemConfig] = None,
) -> List[AblationPoint]:
    """Backup-replica ablation: ``k`` vs continuity and overhead."""
    config = base_config or SystemConfig(num_nodes=200, rounds=30)
    return [
        _run(f"k={k}", replace(config, backup_replicas=k), "continustreaming")
        for k in replica_counts
    ]


def run_prefetch_limit_ablation(
    limits: Sequence[int] = (0, 2, 5, 10),
    base_config: Optional[SystemConfig] = None,
) -> List[AblationPoint]:
    """Pre-fetch cap ablation: ``l`` vs continuity and overhead."""
    config = base_config or SystemConfig(num_nodes=200, rounds=30)
    return [
        _run(f"l={limit}", replace(config, prefetch_limit=limit), "continustreaming")
        for limit in limits
    ]


def run_churn_sensitivity(
    churn_fractions: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    base_config: Optional[SystemConfig] = None,
) -> List[AblationPoint]:
    """Continuity of both systems as the per-round churn grows."""
    config = base_config or SystemConfig(num_nodes=200, rounds=30)
    points: List[AblationPoint] = []
    for fraction in churn_fractions:
        churned = replace(
            config, leave_fraction=fraction, join_fraction=fraction
        )
        points.append(_run(f"coolstreaming churn={fraction:g}", churned, "coolstreaming"))
        points.append(
            _run(f"continustreaming churn={fraction:g}", churned, "continustreaming")
        )
    return points


def format_ablation(points: Sequence[AblationPoint]) -> str:
    """Plain-text rendering of an ablation sweep."""
    header = (
        f"{'configuration':<46} | {'continuity':>10} | {'pre-fetch':>9} | {'control':>7}"
    )
    lines = [header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.name:<46} | {point.stable_continuity:>10.3f} | "
            f"{point.prefetch_overhead:>9.4f} | {point.control_overhead:>7.4f}"
        )
    return "\n".join(lines)
