"""Ablation experiments for the design choices called out in DESIGN.md.

These are not figures from the paper; they quantify the contribution of the
individual mechanisms ContinuStreaming layers on top of the CoolStreaming
baseline:

* scheduling policy — urgency+rarity (equations (1)-(3)) vs rarest-first;
* the adaptive urgent ratio ``α`` vs a fixed one;
* the number of backup replicas ``k`` (the analytic per-segment pre-fetch
  failure probability is ``(½)^k``);
* the per-period pre-fetch cap ``l``;
* whole pipeline phases — the ``pipeline=`` hook removes (or replaces) a
  :class:`~repro.core.phases.base.Phase` structurally instead of tuning its
  parameters to zero (:func:`run_phase_ablation`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.phases import Phase, ProtocolRegistry
from repro.core.system import StreamingSystem


@dataclass(frozen=True)
class AblationPoint:
    """One configuration of an ablation sweep."""

    name: str
    stable_continuity: float
    prefetch_overhead: float
    control_overhead: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "stable_continuity": self.stable_continuity,
            "prefetch_overhead": self.prefetch_overhead,
            "control_overhead": self.control_overhead,
        }


def _run(
    name: str,
    config: SystemConfig,
    system: str,
    pipeline: Optional[Sequence[Phase]] = None,
) -> AblationPoint:
    run = StreamingSystem(config, system=system, pipeline=pipeline).run()
    return AblationPoint(
        name=name,
        stable_continuity=run.stable_continuity(),
        prefetch_overhead=run.prefetch_overhead(),
        control_overhead=run.control_overhead(),
    )


def _pipeline_without(system: str, *phase_names: str) -> List[Phase]:
    """The ``system`` protocol's default pipeline minus the named phases.

    Raises:
        ValueError: if a requested name matches no phase — a typo here would
            otherwise silently produce a "full pipeline" labelled as ablated.
    """
    default = ProtocolRegistry.get(system).build_pipeline()
    known = {phase.name for phase in default}
    missing = [name for name in phase_names if name not in known]
    if missing:
        raise ValueError(
            f"cannot ablate {missing!r}: not in the {system!r} pipeline {sorted(known)}"
        )
    return [phase for phase in default if phase.name not in phase_names]


def run_phase_ablation(
    base_config: Optional[SystemConfig] = None,
) -> List[AblationPoint]:
    """Structural pipeline ablation via the ``pipeline=`` hook.

    Unlike :func:`run_prefetch_limit_ablation` (which tunes ``l`` to zero but
    still runs the prediction machinery), this removes whole phases from the
    round pipeline: first the on-demand retrieval (predictions are made but
    never acted on), then the urgent-line prediction as well (pure gossip
    with ContinuStreaming's scheduler).
    """
    config = base_config or SystemConfig(num_nodes=200, rounds=30)
    return [
        _run("full pipeline", config, "continustreaming"),
        _run(
            "no on-demand retrieval phase",
            config,
            "continustreaming",
            pipeline=_pipeline_without("continustreaming", "on-demand-retrieval"),
        ),
        _run(
            "no prediction, no retrieval",
            config,
            "continustreaming",
            pipeline=_pipeline_without(
                "continustreaming", "urgent-line-prediction", "on-demand-retrieval"
            ),
        ),
    ]


def run_priority_ablation(
    base_config: Optional[SystemConfig] = None,
) -> List[AblationPoint]:
    """Scheduling-policy ablation.

    Compares the CoolStreaming baseline, ContinuStreaming with its pre-fetch
    disabled (scheduler-only effect) and the full ContinuStreaming system, on
    the same topology/seed.
    """
    config = base_config or SystemConfig(num_nodes=200, rounds=30)
    return [
        _run("coolstreaming (rarest-first)", config, "coolstreaming"),
        _run(
            "continustreaming scheduler only (no pre-fetch)",
            replace(config, prefetch_limit=0),
            "continustreaming",
        ),
        _run("continustreaming full", config, "continustreaming"),
    ]


def run_replica_ablation(
    replica_counts: Sequence[int] = (1, 2, 4, 8),
    base_config: Optional[SystemConfig] = None,
) -> List[AblationPoint]:
    """Backup-replica ablation: ``k`` vs continuity and overhead."""
    config = base_config or SystemConfig(num_nodes=200, rounds=30)
    return [
        _run(f"k={k}", replace(config, backup_replicas=k), "continustreaming")
        for k in replica_counts
    ]


def run_prefetch_limit_ablation(
    limits: Sequence[int] = (0, 2, 5, 10),
    base_config: Optional[SystemConfig] = None,
) -> List[AblationPoint]:
    """Pre-fetch cap ablation: ``l`` vs continuity and overhead."""
    config = base_config or SystemConfig(num_nodes=200, rounds=30)
    return [
        _run(f"l={limit}", replace(config, prefetch_limit=limit), "continustreaming")
        for limit in limits
    ]


def run_churn_sensitivity(
    churn_fractions: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    base_config: Optional[SystemConfig] = None,
) -> List[AblationPoint]:
    """Continuity of both systems as the per-round churn grows."""
    config = base_config or SystemConfig(num_nodes=200, rounds=30)
    points: List[AblationPoint] = []
    for fraction in churn_fractions:
        churned = replace(
            config, leave_fraction=fraction, join_fraction=fraction
        )
        points.append(_run(f"coolstreaming churn={fraction:g}", churned, "coolstreaming"))
        points.append(
            _run(f"continustreaming churn={fraction:g}", churned, "continustreaming")
        )
    return points


def format_ablation(points: Sequence[AblationPoint]) -> str:
    """Plain-text rendering of an ablation sweep."""
    header = (
        f"{'configuration':<46} | {'continuity':>10} | {'pre-fetch':>9} | {'control':>7}"
    )
    lines = [header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.name:<46} | {point.stable_continuity:>10.3f} | "
            f"{point.prefetch_overhead:>9.4f} | {point.control_overhead:>7.4f}"
        )
    return "\n".join(lines)
