"""Figures 7 and 8 — stable-phase continuity versus overlay size.

The paper sweeps the overlay size from 100 to 8000 nodes (``M = 5``) and
reports the stable-phase playback continuity of CoolStreaming and
ContinuStreaming in static (Figure 7) and dynamic (Figure 8) environments.
The observed trends are: both curves decrease with size, ContinuStreaming
stays well above CoolStreaming everywhere, and the increment
``Δ = PC_new − PC_old`` grows with the size — larger networks benefit more
from the DHT-assisted pre-fetch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.system import StreamingSystem

#: Overlay sizes of the paper's sweep.
PAPER_SIZES: Sequence[int] = (100, 500, 1000, 2000, 4000, 8000)

#: A scaled-down sweep for CI / benchmarks.
SMALL_SIZES: Sequence[int] = (50, 100, 200)


@dataclass(frozen=True)
class ScalePoint:
    """Stable continuity of both systems at one overlay size."""

    num_nodes: int
    dynamic: bool
    coolstreaming: float
    continustreaming: float

    @property
    def delta(self) -> float:
        """The continuity increment brought by ContinuStreaming."""
        return self.continustreaming - self.coolstreaming

    def as_dict(self) -> dict:
        return {
            "n": self.num_nodes,
            "coolstreaming": self.coolstreaming,
            "continustreaming": self.continustreaming,
            "delta": self.delta,
        }


def run_scale_sweep(
    sizes: Optional[Sequence[int]] = None,
    dynamic: bool = False,
    rounds: int = 40,
    seed: int = 0,
    base_config: Optional[SystemConfig] = None,
) -> List[ScalePoint]:
    """Reproduce Figure 7 (``dynamic=False``) or Figure 8 (``dynamic=True``)."""
    sweep = list(sizes or PAPER_SIZES)
    points: List[ScalePoint] = []
    for num_nodes in sweep:
        config = (base_config or SystemConfig(num_nodes=num_nodes, rounds=rounds,
                                              seed=seed)).scaled(num_nodes, rounds)
        config = config.dynamic_variant() if dynamic else config.static_variant()
        cool = StreamingSystem(config, system="coolstreaming").run()
        conti = StreamingSystem(config, system="continustreaming").run()
        points.append(
            ScalePoint(
                num_nodes=num_nodes,
                dynamic=dynamic,
                coolstreaming=cool.stable_continuity(),
                continustreaming=conti.stable_continuity(),
            )
        )
    return points


def format_scale_sweep(points: Sequence[ScalePoint]) -> str:
    """Plain-text rendering of a Figure 7/8 sweep."""
    header = f"{'n':>6} | {'CoolStreaming':>13} | {'ContinuStreaming':>16} | {'delta':>6}"
    lines = [header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.num_nodes:>6} | {point.coolstreaming:>13.3f} | "
            f"{point.continustreaming:>16.3f} | {point.delta:>6.3f}"
        )
    return "\n".join(lines)
