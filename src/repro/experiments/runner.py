"""Command-line runner for the experiment suite.

Usage (installed as ``continustreaming-experiments``)::

    continustreaming-experiments fig3                # Figure 3 (DHT)
    continustreaming-experiments table               # Section 5.1 table
    continustreaming-experiments fig5 --nodes 300    # static continuity track
    continustreaming-experiments fig6 --nodes 300    # dynamic continuity track
    continustreaming-experiments fig7 --sizes 100 200 400
    continustreaming-experiments fig9
    continustreaming-experiments fig10
    continustreaming-experiments fig11
    continustreaming-experiments ablations
    continustreaming-experiments all --scale small

    # scenario campaigns (see docs/scenarios.md):
    continustreaming-experiments campaign --scenario flash-crowd --seeds 4 --workers 4
    continustreaming-experiments campaign --scenario my-spec.yaml --out results/
    continustreaming-experiments campaign --backend runtime --scenario static --seeds 3

    # live asyncio runtime (see docs/runtime.md):
    continustreaming-experiments runtime --scenario static --nodes 50 --rounds 20
    continustreaming-experiments runtime --parity --nodes 200 --rounds 60 --time-scale 0.5
    continustreaming-experiments runtime --parity-matrix --clock virtual --nodes 120

    # sharded multi-process cluster over TCP (see docs/cluster.md):
    continustreaming-experiments cluster --shards 4            # 1000 peers
    continustreaming-experiments cluster --shards 2 --nodes 100 --rounds 20
    continustreaming-experiments runtime --parity-matrix --backend cluster --nodes 60
    continustreaming-experiments campaign --backend cluster --shards 2 --nodes 80

    # observability plane (see docs/observability.md):
    continustreaming-experiments runtime --obs --metrics-out obs.jsonl
    continustreaming-experiments cluster --shards 2 --metrics-out obs.jsonl
    continustreaming-experiments obs --in obs.jsonl
    continustreaming-experiments campaign --backend runtime --obs --out results/

    # live telemetry, SLO budgets and the cockpit:
    continustreaming-experiments cluster --shards 2 --slo "continuity>=0.9" \
        --telemetry-out telemetry.jsonl
    continustreaming-experiments obs --live --in telemetry.jsonl

``--scale paper`` uses the paper's node counts (slow: thousands of nodes);
``--scale small`` (default) uses laptop-friendly sizes that preserve the
qualitative shape.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.experiments import fig3_dht, fig5_6_track, fig7_8_scale, fig9_control
from repro.experiments import ablations as ablations_mod
from repro.experiments import fig10_11_prefetch, table_theory

#: Round count used when ``--rounds`` is not given.
DEFAULT_ROUNDS = 30


def _obs_config(args: argparse.Namespace):
    """The observability plane requested by the flags (``None`` = off).

    ``--metrics-out``, ``--slo`` and ``--telemetry-out`` all imply
    ``--obs`` — asking for the artifact (or the SLO verdict) is asking
    for the instrumentation.
    """
    if not (args.obs or args.metrics_out or args.slo or args.telemetry_out):
        return None
    from repro.obs import ObsConfig

    return ObsConfig(
        trace_sample=args.trace_sample,
        telemetry_every=args.telemetry_every,
        flows=not args.no_flows,
        topo=not args.no_topo,
    )


def _telemetry_plane(args: argparse.Namespace, swarm, rounds: int):
    """Attach the live telemetry consumers to a single-process swarm.

    Chains the swarm's telemetry sink through a
    :class:`~repro.obs.health.HealthEngine` (sharing the swarm's own
    recorder, so alerts and the breach postmortem land in the obs
    export) and, with ``--telemetry-out``, a streaming
    :class:`~repro.obs.live.TelemetryWriter`.  With ``--slo`` the sink
    raises :class:`~repro.obs.health.SloViolation` on breach, aborting
    the run early.  Returns ``(engine, writer)`` (both ``None`` when no
    telemetry consumer was requested).
    """
    from repro.obs import HealthEngine, SloViolation, TelemetryWriter, parse_slo

    slo = parse_slo(args.slo)
    if slo is None and not args.telemetry_out:
        return None, None
    grace = (
        slo.grace if slo is not None and slo.grace is not None else max(2, rounds // 3)
    )
    engine = HealthEngine(
        slo=slo, recorder=swarm.obs, grace=grace, expected_shards=1
    )
    writer = TelemetryWriter(args.telemetry_out) if args.telemetry_out else None

    def sink(body):
        engine.observe_frame(body)
        if writer is not None:
            writer.frame(body)
        for alert in engine.drain_alerts():
            if writer is not None:
                writer.alert(alert)
        if slo is not None and engine.breach is not None:
            raise SloViolation(engine.breach)

    swarm.telemetry_sink = sink
    return engine, writer


def _fidelity_lines(result) -> List[str]:
    """Summary line for a hybrid-fidelity run ('' for full fidelity)."""
    fid = result.fidelity
    if not fid:
        return []
    slim = int(fid.get("slim_peers", 0))
    mem = int(fid.get("slim_memory_bytes", 0))
    per_peer = f" ({mem / slim:.1f} B/slim peer)" if slim else ""
    return [
        f"  hybrid: {fid.get('core_peers', 0)} live core peers + "
        f"{slim} slim peers of {fid.get('total_peers', 0)} total, "
        f"slim tier {mem} B{per_peer}"
    ]


def _obs_lines(result, args: argparse.Namespace) -> List[str]:
    """Summary lines + JSONL export for an obs-enabled run."""
    obs = result.obs
    if obs is None:
        return []
    from repro.obs import write_obs_jsonl

    traces = obs.get("traces") or {}
    lines = [
        f"  obs: {len(obs.get('spans', []))} spans, "
        f"{traces.get('sampled', 0)} sampled journeys "
        f"({traces.get('played', 0)} played / {traces.get('missed', 0)} missed), "
        f"{len(obs.get('postmortems', []))} postmortems"
    ]
    if args.metrics_out:
        write_obs_jsonl(args.metrics_out, obs)
        lines.append(f"  obs: metrics/trace JSONL written to {args.metrics_out}")
    return lines


def _obs_postmortems(result) -> str:
    """Flight-recorder postmortems for a failure path ('' when none)."""
    if result.obs is None:
        return ""
    from repro.obs import format_postmortems

    return format_postmortems(result.obs)


def _print_slo_breach(exc) -> None:
    """Print the breach postmortem to stderr before exiting non-zero."""
    from repro.obs import format_postmortems

    postmortems = format_postmortems(exc.obs)
    if postmortems:
        print(postmortems, file=sys.stderr)


def _telemetry_lines(args: argparse.Namespace, health) -> List[str]:
    """Summary lines for the live telemetry plane (``health`` is a
    :meth:`~repro.obs.health.HealthEngine.snapshot` dict, or ``None``)."""
    lines = []
    if health is not None:
        slo = health.get("slo")
        lines.append(
            f"  health: {len(health.get('alerts', []))} alert(s), "
            f"closed through period {health.get('closed_through', -1)}"
            + (f", SLO '{slo}' ok" if slo else "")
        )
    if args.telemetry_out:
        lines.append(
            f"  telemetry: JSONL streamed to {args.telemetry_out} "
            f"(exposition at {args.telemetry_out}.prom)"
        )
    return lines


def _sizes_for(scale: str, paper: Sequence[int], small: Sequence[int]) -> List[int]:
    return list(paper if scale == "paper" else small)


def _default_nodes(scale: str) -> int:
    return 1000 if scale == "paper" else 200


def _rounds(args: argparse.Namespace) -> int:
    return DEFAULT_ROUNDS if args.rounds is None else args.rounds


def cmd_fig3(args: argparse.Namespace) -> str:
    counts = args.sizes or _sizes_for(
        args.scale, fig3_dht.PAPER_NODE_COUNTS, fig3_dht.SMALL_NODE_COUNTS
    )
    points = fig3_dht.run_fig3_dht(
        node_counts=counts, lookups_per_size=args.lookups, seed=args.seed
    )
    return fig3_dht.format_fig3(points)


def cmd_table(args: argparse.Namespace) -> str:
    nodes = args.nodes or _default_nodes(args.scale)
    config = SystemConfig(num_nodes=nodes, rounds=_rounds(args), seed=args.seed)
    rows = table_theory.run_theory_table(config)
    measured = table_theory.format_theory_table(rows)
    reference = table_theory.format_theory_table(table_theory.paper_reference_rows())
    return f"measured:\n{measured}\n\npaper reference:\n{reference}"


def _track(args: argparse.Namespace, dynamic: bool) -> str:
    nodes = args.nodes or _default_nodes(args.scale)
    results = fig5_6_track.run_continuity_track(
        num_nodes=nodes, rounds=_rounds(args), dynamic=dynamic, seed=args.seed
    )
    return fig5_6_track.format_track(results)


def cmd_fig5(args: argparse.Namespace) -> str:
    return _track(args, dynamic=False)


def cmd_fig6(args: argparse.Namespace) -> str:
    return _track(args, dynamic=True)


def _scale_sweep(args: argparse.Namespace, dynamic: bool) -> str:
    sizes = args.sizes or _sizes_for(
        args.scale, fig7_8_scale.PAPER_SIZES, fig7_8_scale.SMALL_SIZES
    )
    points = fig7_8_scale.run_scale_sweep(
        sizes=sizes, dynamic=dynamic, rounds=_rounds(args), seed=args.seed
    )
    return fig7_8_scale.format_scale_sweep(points)


def cmd_fig7(args: argparse.Namespace) -> str:
    return _scale_sweep(args, dynamic=False)


def cmd_fig8(args: argparse.Namespace) -> str:
    return _scale_sweep(args, dynamic=True)


def cmd_fig9(args: argparse.Namespace) -> str:
    sizes = args.sizes or _sizes_for(
        args.scale, fig9_control.PAPER_SIZES, fig9_control.SMALL_SIZES
    )
    points = fig9_control.run_control_overhead(
        sizes=sizes, rounds=_rounds(args), seed=args.seed
    )
    return fig9_control.format_control_overhead(points)


def cmd_fig10(args: argparse.Namespace) -> str:
    nodes = args.nodes or _default_nodes(args.scale)
    tracks = fig10_11_prefetch.run_prefetch_overhead_track(
        num_nodes=nodes, rounds=_rounds(args), seed=args.seed
    )
    lines = []
    for label, track in tracks.items():
        lines.append(
            f"{label}: stable pre-fetch overhead {track.stable_overhead:.4f}"
        )
        lines.append(
            "  track: [" + ", ".join(f"{value:.4f}" for value in track.overhead) + "]"
        )
    return "\n".join(lines)


def cmd_fig11(args: argparse.Namespace) -> str:
    sizes = args.sizes or _sizes_for(
        args.scale, fig10_11_prefetch.PAPER_SIZES, fig10_11_prefetch.SMALL_SIZES
    )
    points = fig10_11_prefetch.run_prefetch_overhead_scale(
        sizes=sizes, rounds=_rounds(args), seed=args.seed
    )
    return fig10_11_prefetch.format_prefetch_scale(points)


def cmd_ablations(args: argparse.Namespace) -> str:
    nodes = args.nodes or _default_nodes(args.scale)
    config = SystemConfig(num_nodes=nodes, rounds=_rounds(args), seed=args.seed)
    sections = [
        ("priority / pre-fetch", ablations_mod.run_priority_ablation(config)),
        ("backup replicas k", ablations_mod.run_replica_ablation(base_config=config)),
        ("pre-fetch cap l", ablations_mod.run_prefetch_limit_ablation(base_config=config)),
        ("pipeline phases", ablations_mod.run_phase_ablation(base_config=config)),
    ]
    lines = []
    for title, points in sections:
        lines.append(f"== {title} ==")
        lines.append(ablations_mod.format_ablation(points))
        lines.append("")
    return "\n".join(lines)


def cmd_campaign(args: argparse.Namespace) -> str:
    """Run a scenario × seed campaign across worker processes."""
    from repro.scenarios import builtin_names, run_campaign

    names = args.scenario or ["static", "paper-dynamic"]
    if args.slo or args.telemetry_out:
        raise SystemExit(
            "campaign does not take --slo/--telemetry-out (they govern one "
            "run; use the runtime or cluster command)"
        )
    results_path = None
    summary_path = None
    obs_cfg = _obs_config(args)
    # For campaigns --metrics-out names a *directory*: each grid cell
    # writes its own collision-free obs JSONL there.
    obs_dir = args.metrics_out or (args.out if obs_cfg is not None else None)
    if args.out:
        from pathlib import Path

        out_dir = Path(args.out)
        results_path = out_dir / "campaign_results.jsonl"
        summary_path = out_dir / "campaign_summary.json"
    try:
        store = run_campaign(
            names,
            # The global --seed offsets the sweep: seeds seed..seed+N-1.
            seeds=range(args.seed, args.seed + args.seeds),
            node_counts=[args.nodes] if args.nodes else None,
            rounds=args.rounds,
            workers=args.workers,
            results_path=results_path,
            backend=args.backend,
            time_scale=args.time_scale,
            shards=args.shards,
            obs=obs_cfg,
            obs_dir=obs_dir,
            fidelity=args.fidelity,
            core_peers=args.core_peers,
        )
    except (ValueError, RuntimeError) as exc:
        # ValueError: bad scenario names/specs; RuntimeError: e.g. a YAML
        # spec on an environment without PyYAML.
        raise SystemExit(f"campaign error: {exc}") from exc
    if summary_path is not None:
        store.write_summary(summary_path)
    lines = [
        f"campaign[{args.backend}]: {len(store)} cells "
        f"({args.seeds} seeds x {len(names)} scenarios, {args.workers} workers), "
        f"total simulation time {store.total_wall_time_s():.2f}s",
        "",
        "per-seed results:",
        store.format_results(),
        "",
        "aggregates (mean ± 95% CI over seeds):",
        store.format_summary(),
    ]
    if not store.is_complete:
        lines.insert(1, store.format_incomplete())
    if obs_cfg is not None and obs_dir:
        lines.append("")
        lines.append(f"per-cell obs JSONL written to {obs_dir}/")
    if args.out:
        lines.append("")
        lines.append(f"results written to {results_path} and {summary_path}")
    else:
        lines.append("")
        lines.append(f"(built-in scenarios: {', '.join(builtin_names())}; "
                     f"--out DIR persists JSONL + summary)")
    out = "\n".join(lines)
    if not store.is_complete:
        # The partial results are flushed and reported above, but an
        # aborted campaign must still fail the invocation (CI smoke steps
        # rely on the exit code).
        print(out)
        raise SystemExit(f"campaign incomplete: {store.incomplete_reason}")
    return out


def cmd_runtime(args: argparse.Namespace) -> str:
    """Run a scenario as a live asyncio swarm (see docs/runtime.md)."""
    from repro.analysis.metrics import summarize_ledger
    from repro.runtime import DEFAULT_TIME_SCALE, LiveSwarm, run_parity
    from repro.scenarios import load_scenarios

    names = args.scenario or ["static"]
    time_scale = DEFAULT_TIME_SCALE if args.time_scale is None else args.time_scale
    if args.fidelity == "hybrid" and (args.parity or args.parity_matrix):
        raise SystemExit(
            "--fidelity hybrid does not combine with the parity harness "
            "(parity pins the full runtime against the sim; hybrid parity "
            "is pinned by tests/test_runtime_hybrid.py)"
        )
    if args.core_peers is not None and args.fidelity != "hybrid":
        raise SystemExit("--core-peers needs --fidelity hybrid")
    if args.parity_matrix:
        # Matrix mode defaults to run_parity_matrix's own scale (120
        # nodes / 40 rounds — what the nightly acceptance runs), not the
        # single-swarm smoke scale.
        return _parity_matrix(
            args, names, args.nodes or 120, args.rounds or 40, time_scale
        )
    nodes = args.nodes or 50
    rounds = args.rounds or 20
    if len(names) > 1:
        raise SystemExit(
            f"runtime runs one scenario per invocation, got {len(names)}: "
            f"{' '.join(names)} (campaigns sweep multiple scenarios)"
        )
    try:
        (spec,) = load_scenarios(names)
    except (ValueError, RuntimeError) as exc:
        raise SystemExit(f"runtime error: {exc}") from exc
    result = None
    if args.parity:
        report = run_parity(
            spec, num_nodes=nodes, rounds=rounds, seed=args.seed,
            time_scale=time_scale, clock=args.clock,
        )
        continuity = report.runtime_stable_continuity
        out = report.formatted()
    else:
        from repro.obs import SloViolation

        spec = spec.scaled(num_nodes=nodes, rounds=rounds, seed=args.seed)
        swarm_kwargs = dict(
            time_scale=time_scale,
            clock=args.clock,
            batching=not args.no_batch,
            delta_maps=not args.no_delta,
            obs=_obs_config(args),
        )
        if args.fidelity == "hybrid":
            from repro.runtime.slim import HybridSwarm

            try:
                swarm = HybridSwarm(spec, core_peers=args.core_peers, **swarm_kwargs)
            except ValueError as exc:
                raise SystemExit(f"runtime error: {exc}") from exc
        else:
            swarm = LiveSwarm(spec, **swarm_kwargs)
        engine, writer = _telemetry_plane(args, swarm, rounds)
        try:
            result = swarm.run()
        except SloViolation as exc:
            _print_slo_breach(exc)
            raise SystemExit(f"runtime SLO breach: {exc}") from exc
        finally:
            if writer is not None:
                writer.close()
        continuity = result.stable_continuity()
        ledger = summarize_ledger(result.ledger, transport=result.transport)
        lines = [
            f"runtime {spec.name} n={nodes} rounds={rounds} "
            f"time_scale={time_scale} clock={args.clock} ({spec.system}):",
            f"  stable continuity {continuity:.4f}  "
            f"(final {result.continuity_series()[-1]:.4f})",
            f"  control overhead {ledger['control_overhead']:.4f}, "
            f"prefetch overhead {ledger['prefetch_overhead']:.4f}",
            f"  {result.messages_sent} wire messages "
            f"({result.messages_per_wall_second():.0f}/s wall), "
            f"{result.segments_delivered()} segments "
            f"({result.segments_per_wall_second():.0f}/s wall), "
            f"{result.bytes_on_wire} bytes on wire",
            f"  transport: {result.transport.formatted()}",
            f"  peers +{result.peers_joined}/-{result.peers_left}, "
            f"{result.messages_dropped} frames dropped, "
            f"schedule dilated {result.clock_dilations}x "
            f"(+{result.clock_dilation_s:.2f}s), "
            f"wall {result.wall_time_s:.2f}s",
        ]
        lines.extend(_fidelity_lines(result))
        lines.extend(_obs_lines(result, args))
        lines.extend(
            _telemetry_lines(args, engine.snapshot() if engine is not None else None)
        )
        out = "\n".join(lines)
    if args.assert_continuity is not None and continuity < args.assert_continuity:
        print(out)
        if result is not None:
            postmortems = _obs_postmortems(result)
            if postmortems:
                print(postmortems, file=sys.stderr)
        raise SystemExit(
            f"runtime stable continuity {continuity:.4f} is below the "
            f"required {args.assert_continuity}"
        )
    return out


def cmd_cluster(args: argparse.Namespace) -> str:
    """Run a scenario as a sharded multi-process swarm (docs/cluster.md)."""
    from repro.analysis.metrics import summarize_ledger
    from repro.runtime.cluster import run_cluster
    from repro.scenarios import load_scenarios

    names = args.scenario or ["static"]
    if len(names) > 1:
        raise SystemExit(
            f"cluster runs one scenario per invocation, got {len(names)}: "
            f"{' '.join(names)} (campaigns sweep multiple scenarios)"
        )
    try:
        (spec,) = load_scenarios(names)
    except (ValueError, RuntimeError) as exc:
        raise SystemExit(f"cluster error: {exc}") from exc
    from repro.obs import SloViolation, parse_slo

    nodes = args.nodes or 1000
    rounds = args.rounds or 30
    spec = spec.scaled(num_nodes=nodes, rounds=rounds, seed=args.seed)
    try:
        slo = parse_slo(args.slo)
    except ValueError as exc:
        raise SystemExit(f"cluster error: {exc}") from exc
    try:
        result = run_cluster(
            spec,
            shards=args.shards,
            rounds=rounds,
            time_scale=args.time_scale,
            batching=not args.no_batch,
            delta_maps=not args.no_delta,
            obs=_obs_config(args),
            slo=slo,
            telemetry_out=args.telemetry_out,
            fidelity=args.fidelity,
            core_peers=args.core_peers,
        )
    except ValueError as exc:
        raise SystemExit(f"cluster error: {exc}") from exc
    except SloViolation as exc:
        _print_slo_breach(exc)
        raise SystemExit(f"cluster SLO breach: {exc}") from exc
    except RuntimeError as exc:
        raise SystemExit(f"cluster error: {exc}") from exc
    continuity = result.stable_continuity()
    ledger = summarize_ledger(result.ledger, transport=result.transport)
    cluster = result.cluster or {}
    socket = cluster.get("socket", {})
    lines = [
        f"cluster {spec.name} n={nodes} rounds={rounds} shards={args.shards} "
        f"time_scale={result.time_scale:.3g} ({spec.system}):",
        f"  stable continuity {continuity:.4f}  "
        f"(final {result.continuity_series()[-1]:.4f})",
        f"  control overhead {ledger['control_overhead']:.4f}, "
        f"prefetch overhead {ledger['prefetch_overhead']:.4f}",
        f"  {result.messages_sent} wire messages "
        f"({result.messages_per_wall_second():.0f}/s wall), "
        f"{result.segments_delivered()} segments "
        f"({result.segments_per_wall_second():.0f}/s wall)",
        f"  sockets: {socket.get('frames_out', 0)} frames out / "
        f"{socket.get('frames_in', 0)} in, {socket.get('bytes_out', 0)} bytes out, "
        f"{socket.get('sheds', 0)} shed, {socket.get('disconnects', 0)} disconnects",
        f"  {result.bytes_on_wire} bytes on wire (loopback tails included)",
        f"  transport: {result.transport.formatted()}",
        f"  peers +{result.peers_joined}/-{result.peers_left}, "
        f"{result.messages_dropped} frames dropped, "
        f"schedule dilated {result.clock_dilations}x "
        f"(+{result.clock_dilation_s:.2f}s), "
        f"shards lost {cluster.get('shards_lost', 0)}, "
        f"wall {result.wall_time_s:.2f}s",
    ]
    per_shard = cluster.get("per_shard", [])
    if per_shard:
        lines.append(
            "  shards: "
            + ", ".join(
                f"#{row['shard']}{'*' if row.get('hosts_source') else ''}"
                f" {row['hosted_peers']} peers"
                for row in per_shard
            )
            + "  (* hosts the source)"
        )
    lines.extend(_fidelity_lines(result))
    lines.extend(_obs_lines(result, args))
    lines.extend(_telemetry_lines(args, cluster.get("health")))
    out = "\n".join(lines)
    if args.assert_continuity is not None and continuity < args.assert_continuity:
        print(out)
        postmortems = _obs_postmortems(result)
        if postmortems:
            print(postmortems, file=sys.stderr)
        raise SystemExit(
            f"cluster stable continuity {continuity:.4f} is below the "
            f"required {args.assert_continuity}"
        )
    return out


def cmd_obs(args: argparse.Namespace) -> str:
    """Render an obs JSONL report, the live cockpit, or a run diff."""
    if args.mode == "diff":
        return _cmd_obs_diff(args)
    if args.mode is not None:
        raise SystemExit(
            f"unknown obs mode {args.mode!r} (supported: diff)"
        )
    if args.live:
        from repro.obs import run_live

        if not args.obs_in:
            raise SystemExit(
                "obs --live needs --in PATH (a telemetry JSONL from --telemetry-out)"
            )
        try:
            cockpit = run_live(args.obs_in, refresh_s=args.refresh, once=args.once)
        except OSError as exc:
            raise SystemExit(
                f"obs error: could not read {args.obs_in}: {exc}"
            ) from exc
        return (
            f"(cockpit closed: {cockpit.frames} frame(s), "
            f"{cockpit.alert_count} alert(s), {len(cockpit.shards)} shard(s))"
        )
    from repro.obs import load_obs_jsonl, render_report

    if not args.obs_in:
        raise SystemExit(
            "obs needs --in PATH (a JSONL written by --metrics-out)"
        )
    try:
        obs = load_obs_jsonl(args.obs_in)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"obs error: could not read {args.obs_in}: {exc}") from exc
    return render_report(obs)


def _cmd_obs_diff(args: argparse.Namespace) -> str:
    """``obs diff``: compare a baseline and a candidate obs JSONL export.

    Warn-only by default — regressions are reported (and written to the
    ``--verdict-out`` JSON for CI) but the exit code stays 0 unless
    ``--strict`` asks for a hard gate.
    """
    import json as _json

    from repro.obs import diff_obs, load_obs_jsonl, render_diff

    if not args.baseline or not args.obs_in:
        raise SystemExit(
            "obs diff needs --baseline PATH and --in PATH "
            "(two JSONL exports written by --metrics-out)"
        )
    try:
        baseline = load_obs_jsonl(args.baseline)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"obs error: could not read {args.baseline}: {exc}") from exc
    try:
        candidate = load_obs_jsonl(args.obs_in)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"obs error: could not read {args.obs_in}: {exc}") from exc
    verdict = diff_obs(
        baseline,
        candidate,
        p95_tolerance=args.p95_tolerance,
        counter_tolerance=args.counter_tolerance,
    )
    verdict["baseline"] = str(args.baseline)
    verdict["candidate"] = str(args.obs_in)
    if args.verdict_out:
        with open(args.verdict_out, "w", encoding="utf-8") as fh:
            _json.dump(verdict, fh, indent=2, sort_keys=True)
            fh.write("\n")
    report = render_diff(verdict)
    if args.strict and not verdict["ok"]:
        raise SystemExit(report)
    return report


def _parity_matrix(
    args: argparse.Namespace,
    names: List[str],
    nodes: int,
    rounds: int,
    time_scale: float,
) -> str:
    """Run the sim-vs-live parity matrix over several scenarios."""
    from repro.runtime.parity import PARITY_TOLERANCE, run_parity_matrix

    scenarios = None if args.scenario is None else names
    tolerance = (
        PARITY_TOLERANCE if args.tolerance is None else args.tolerance
    )
    # The campaign-oriented --backend flag doubles as the parity-matrix
    # axis: "cluster" puts sharded multi-process swarms on the live side;
    # anything else keeps the standard single-process runtime.
    backend = "cluster" if args.backend == "cluster" else "runtime"
    matrix = run_parity_matrix(
        scenarios=scenarios,
        num_nodes=nodes,
        rounds=rounds,
        seed=args.seed,
        time_scale=time_scale,
        clock=args.clock,
        backend=backend,
        shards=args.shards,
    )
    out = matrix.formatted(tolerance)
    failures = matrix.failures(tolerance)
    if failures:
        print(out)
        raise SystemExit(
            f"parity matrix failed: {len(failures)} scenario(s) beyond "
            f"|Δ| ≤ {tolerance}: "
            + ", ".join(f"{r.scenario} ({r.continuity_delta:.4f})" for r in failures)
        )
    if args.assert_continuity is not None:
        below = [
            r for r in matrix.reports
            if r.runtime_stable_continuity < args.assert_continuity
        ]
        if below:
            print(out)
            raise SystemExit(
                "parity matrix runtime continuity below "
                f"{args.assert_continuity}: "
                + ", ".join(
                    f"{r.scenario} ({r.runtime_stable_continuity:.4f})"
                    for r in below
                )
            )
    return out


COMMANDS = {
    "fig3": cmd_fig3,
    "table": cmd_table,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "ablations": cmd_ablations,
    "campaign": cmd_campaign,
    "runtime": cmd_runtime,
    "cluster": cmd_cluster,
    "obs": cmd_obs,
}

#: Commands that sweep grids or run live swarms; excluded from ``all``.
_EXCLUDED_FROM_ALL = ("campaign", "runtime", "cluster", "obs")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="continustreaming-experiments",
        description="Regenerate the tables and figures of the ContinuStreaming paper.",
    )
    parser.add_argument(
        "experiment",
        choices=[*COMMANDS.keys(), "all"],
        help="which experiment to run ('all' runs every figure/table experiment; "
        "campaigns run only when asked for explicitly)",
    )
    parser.add_argument(
        "mode", nargs="?", default=None,
        help="sub-mode of a command; today only 'obs diff' takes one "
        "(compare two obs JSONL exports)",
    )
    parser.add_argument("--scale", choices=("small", "paper"), default="small",
                        help="node-count scale (default: small)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="override the overlay size for single-size experiments")
    parser.add_argument("--sizes", type=int, nargs="*", default=None,
                        help="override the size sweep for sweep experiments")
    parser.add_argument("--rounds", type=int, default=None,
                        help=f"scheduling periods to simulate (default: {DEFAULT_ROUNDS}; "
                        "campaigns default to each scenario's own round count)")
    parser.add_argument("--lookups", type=int, default=2000,
                        help="random lookups per size for fig3 (default: 2000)")
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    campaign_group = parser.add_argument_group("campaign options")
    campaign_group.add_argument(
        "--scenario", nargs="*", default=None, metavar="NAME_OR_FILE",
        help="scenarios to sweep: built-in names (see docs/scenarios.md) or "
        "YAML/JSON spec files (default: static paper-dynamic)")
    campaign_group.add_argument(
        "--seeds", type=int, default=2,
        help="number of sweep seeds per scenario, starting at --seed "
        "(default: 2, i.e. seeds 0 and 1)")
    campaign_group.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the campaign grid (default: 1 = serial)")
    campaign_group.add_argument(
        "--out", default=None, metavar="DIR",
        help="directory for campaign_results.jsonl + campaign_summary.json")
    campaign_group.add_argument(
        "--backend", choices=("sim", "runtime", "cluster"), default="sim",
        help="engine for campaign cells: the lock-step simulator (default), "
        "live virtual-clock swarms (identical seeding and JSONL schema) or "
        "sharded multi-process cluster swarms over TCP; for runtime "
        "--parity-matrix, 'cluster' puts the cluster on the live side")
    runtime_group = parser.add_argument_group("runtime options")
    runtime_group.add_argument(
        "--time-scale", type=float, default=None, metavar="S",
        help="wall seconds per simulated second for the live runtime "
        "(default: 0.1; an overloaded wall-clock swarm stretches its "
        "schedule coherently instead of collapsing)")
    runtime_group.add_argument(
        "--clock", choices=("wall", "virtual"), default="wall",
        help="runtime clock: real time (default) or deterministic virtual "
        "time with zero wall waiting")
    runtime_group.add_argument(
        "--fidelity", choices=("full", "hybrid"), default="full",
        help="runtime fidelity tier: 'full' (default) runs every peer as a "
        "live task; 'hybrid' runs a live core of --core-peers plus an "
        "array-backed slim statistical tier for the rest, scaling to "
        "six-figure swarms (runtime/campaign/cluster backends; see "
        "docs/runtime.md)")
    runtime_group.add_argument(
        "--core-peers", type=int, default=None, metavar="N",
        help="full-fidelity live peers in a --fidelity hybrid run "
        "(default: 50, capped by the swarm size)")
    runtime_group.add_argument(
        "--parity", action="store_true",
        help="run the sim-vs-runtime parity harness instead of a single swarm")
    runtime_group.add_argument(
        "--parity-matrix", action="store_true",
        help="run the parity harness over every --scenario (default: all "
        "built-ins) and exit non-zero beyond the tolerance")
    runtime_group.add_argument(
        "--tolerance", type=float, default=None, metavar="D",
        help="|Δ stable continuity| bar for --parity-matrix (default: 0.03)")
    runtime_group.add_argument(
        "--assert-continuity", type=float, default=None, metavar="X",
        help="exit non-zero unless the runtime's stable continuity reaches X "
        "(used by the CI runtime smoke step)")
    runtime_group.add_argument(
        "--no-batch", action="store_true",
        help="disable the wire fast path's frame batching (one frame per "
        "delivery/envelope, the pre-batching wire behaviour)")
    runtime_group.add_argument(
        "--no-delta", action="store_true",
        help="disable buffer-map delta gossip (every gossip ships the "
        "full map, the pre-delta wire behaviour)")
    obs_group = parser.add_argument_group("observability options")
    obs_group.add_argument(
        "--obs", action="store_true",
        help="enable the observability plane for runtime/cluster runs: "
        "per-period metrics, sampled segment-journey traces and the "
        "flight recorder (see docs/observability.md)")
    obs_group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics/trace/flight JSONL to PATH "
        "(implies --obs; render it later with the obs command)")
    obs_group.add_argument(
        "--trace-sample", type=int, default=16, metavar="N",
        help="trace every Nth segment request per peer (default: 16; "
        "1 traces everything)")
    obs_group.add_argument(
        "--in", dest="obs_in", default=None, metavar="PATH",
        help="JSONL artifact to render with the obs command")
    obs_group.add_argument(
        "--slo", default=None, metavar="SPEC",
        help="abort the run once this SLO's error budget burns too fast, "
        "e.g. 'continuity>=0.95:burn=3x:grace=5' (implies --obs; see "
        "docs/observability.md on burn-rate semantics)")
    obs_group.add_argument(
        "--telemetry-out", default=None, metavar="PATH",
        help="stream live telemetry frames + alerts to PATH as JSONL, with "
        "a Prometheus text exposition at PATH.prom (implies --obs; watch "
        "it with 'obs --live --in PATH')")
    obs_group.add_argument(
        "--telemetry-every", type=int, default=1, metavar="N",
        help="emit one telemetry frame every N scheduling periods "
        "(default: 1)")
    obs_group.add_argument(
        "--live", action="store_true",
        help="with the obs command: tail a telemetry JSONL and render the "
        "refreshing terminal cockpit instead of a static report")
    obs_group.add_argument(
        "--refresh", type=float, default=1.0, metavar="S",
        help="cockpit redraw interval for obs --live (default: 1.0s)")
    obs_group.add_argument(
        "--once", action="store_true",
        help="with obs --live: read the stream once, render once and exit "
        "(used by tests/CI instead of following the file)")
    obs_group.add_argument(
        "--no-flows", action="store_true",
        help="disable the per-link/per-shard-pair flow matrix in an "
        "obs-enabled run")
    obs_group.add_argument(
        "--no-topo", action="store_true",
        help="disable the per-period overlay topology snapshots in an "
        "obs-enabled run")
    obs_group.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="with obs diff: the baseline obs JSONL export (--in is the "
        "candidate)")
    obs_group.add_argument(
        "--verdict-out", default=None, metavar="PATH",
        help="with obs diff: write the machine-readable verdict JSON to "
        "PATH (for CI artifacts/gates)")
    obs_group.add_argument(
        "--p95-tolerance", type=float, default=0.10, metavar="F",
        help="with obs diff: relative worsening of the trace p50/p95 "
        "request→deliver latency that counts as a regression "
        "(default: 0.10)")
    obs_group.add_argument(
        "--counter-tolerance", type=float, default=0.05, metavar="F",
        help="with obs diff: relative counter movement reported as a "
        "change/warning (default: 0.05)")
    obs_group.add_argument(
        "--strict", action="store_true",
        help="with obs diff: exit non-zero when the verdict has "
        "regressions (default is warn-only)")
    cluster_group = parser.add_argument_group("cluster options")
    cluster_group.add_argument(
        "--shards", type=int, default=4,
        help="worker processes for the cluster command, cluster-backend "
        "campaigns and the cluster parity axis (default: 4; the cluster "
        "command defaults to 1000 peers — see docs/cluster.md)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``continustreaming-experiments`` console script."""
    args = build_parser().parse_args(argv)
    if args.mode is not None and args.experiment != "obs":
        raise SystemExit(
            f"the {args.experiment!r} command takes no sub-mode "
            f"(got {args.mode!r})"
        )
    if args.experiment == "all":
        # Campaigns and live swarms are opt-in, not part of "all".
        names = [name for name in COMMANDS if name not in _EXCLUDED_FROM_ALL]
    else:
        names = [args.experiment]
    for name in names:
        print(f"==== {name} ====")
        print(COMMANDS[name](args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
