"""Experiment harness: one module per table/figure of the paper's evaluation.

Every experiment function takes a scale knob so it can run both at the
paper's sizes (hundreds to thousands of nodes, 30+ rounds) and at a
laptop-friendly scale for CI and the benchmark suite; `EXPERIMENTS.md`
records which scale each reported number was produced at.
"""

from repro.experiments.fig3_dht import Fig3Point, run_fig3_dht
from repro.experiments.fig5_6_track import TrackResult, run_continuity_track
from repro.experiments.fig7_8_scale import ScalePoint, run_scale_sweep
from repro.experiments.fig9_control import ControlOverheadPoint, run_control_overhead
from repro.experiments.fig10_11_prefetch import (
    PrefetchOverheadPoint,
    run_prefetch_overhead_scale,
    run_prefetch_overhead_track,
)
from repro.experiments.table_theory import TheoryRow, run_theory_table

__all__ = [
    "run_fig3_dht",
    "Fig3Point",
    "run_theory_table",
    "TheoryRow",
    "run_continuity_track",
    "TrackResult",
    "run_scale_sweep",
    "ScalePoint",
    "run_control_overhead",
    "ControlOverheadPoint",
    "run_prefetch_overhead_track",
    "run_prefetch_overhead_scale",
    "PrefetchOverheadPoint",
]
