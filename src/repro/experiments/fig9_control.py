"""Figure 9 — control overhead versus overlay size for M = 4, 5, 6.

The control overhead is the ratio of buffer-map exchange traffic to real
data-segment traffic.  The paper's back-of-envelope estimate is
``620 · M / (30 Kbit · 10) ≈ M / 495`` (each round a node fetches ``M``
buffer maps of 620 bits while receiving ``p = 10`` segments), and the
simulated values stay below 0.02 for every size from 100 to 8000 nodes,
slightly above the estimate because real continuity is below 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.analysis.theory import expected_control_overhead
from repro.core.config import SystemConfig
from repro.core.system import StreamingSystem

#: Overlay sizes of the paper's sweep.
PAPER_SIZES: Sequence[int] = (100, 500, 1000, 2000, 4000, 8000)

#: Neighbour counts of the paper's sweep.
PAPER_NEIGHBOR_COUNTS: Sequence[int] = (4, 5, 6)

#: Scaled-down defaults for CI / benchmarks.
SMALL_SIZES: Sequence[int] = (50, 100, 200)


@dataclass(frozen=True)
class ControlOverheadPoint:
    """Control overhead of one (size, M) combination."""

    num_nodes: int
    connected_neighbors: int
    control_overhead: float
    analytic_estimate: float

    def as_dict(self) -> dict:
        return {
            "n": self.num_nodes,
            "M": self.connected_neighbors,
            "control_overhead": self.control_overhead,
            "M/495": self.analytic_estimate,
        }


def run_control_overhead(
    sizes: Optional[Sequence[int]] = None,
    neighbor_counts: Optional[Sequence[int]] = None,
    rounds: int = 30,
    seed: int = 0,
    system: str = "continustreaming",
    base_config: Optional[SystemConfig] = None,
) -> List[ControlOverheadPoint]:
    """Reproduce Figure 9.

    The paper notes the control overhead of ContinuStreaming and
    CoolStreaming are essentially identical (same buffer-map exchange), so a
    single system suffices; ``system`` selects which one to run.
    """
    sweep = list(sizes or PAPER_SIZES)
    neighbor_sweep = list(neighbor_counts or PAPER_NEIGHBOR_COUNTS)
    points: List[ControlOverheadPoint] = []
    for num_nodes in sweep:
        for num_neighbors in neighbor_sweep:
            config = (base_config or SystemConfig(num_nodes=num_nodes, rounds=rounds,
                                                  seed=seed)).scaled(num_nodes, rounds)
            config = replace(config, connected_neighbors=num_neighbors)
            run = StreamingSystem(config, system=system).run()
            points.append(
                ControlOverheadPoint(
                    num_nodes=num_nodes,
                    connected_neighbors=num_neighbors,
                    control_overhead=run.control_overhead(),
                    analytic_estimate=expected_control_overhead(
                        num_neighbors,
                        buffer_capacity=config.buffer_capacity,
                        segment_bits=config.segment_bits,
                        playback_rate=config.playback_rate,
                    ),
                )
            )
    return points


def format_control_overhead(points: Sequence[ControlOverheadPoint]) -> str:
    """Plain-text rendering of the Figure 9 data."""
    header = f"{'n':>6} | {'M':>2} | {'control overhead':>16} | {'M/495':>7}"
    lines = [header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.num_nodes:>6} | {point.connected_neighbors:>2} | "
            f"{point.control_overhead:>16.4f} | {point.analytic_estimate:>7.4f}"
        )
    return "\n".join(lines)
