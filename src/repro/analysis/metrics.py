"""Metric aggregation helpers shared by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.net.message import MessageLedger


@dataclass(frozen=True)
class ExperimentRecord:
    """One row of an experiment result table.

    Attributes:
        experiment: experiment identifier (e.g. ``"figure5"``).
        label: row label (e.g. ``"continustreaming/static"``).
        values: named scalar results of the row.
        series: optional named time series (e.g. the continuity track).
    """

    experiment: str
    label: str
    values: Mapping[str, float]
    series: Mapping[str, Sequence[float]] = field(default_factory=dict)

    def value(self, name: str) -> float:
        """A named scalar value of this row."""
        return float(self.values[name])

    def formatted(self, precision: int = 4) -> str:
        """Human-readable one-line rendering of the row."""
        parts = ", ".join(
            f"{key}={value:.{precision}f}" for key, value in sorted(self.values.items())
        )
        return f"[{self.experiment}] {self.label}: {parts}"


def summarize_runs(values: Iterable[float]) -> Dict[str, float]:
    """Mean / std / min / max summary of repeated runs of one metric."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return {"mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0, "count": 0.0}
    return {
        "mean": float(data.mean()),
        "std": float(data.std(ddof=0)),
        "min": float(data.min()),
        "max": float(data.max()),
        "count": float(data.size),
    }


def summarize_ledger(
    ledger: MessageLedger, transport: Optional[object] = None
) -> Dict[str, float]:
    """Named scalar facts of one traffic ledger.

    One flat dict per ledger — bits and message counts per kind plus the
    paper's two overhead ratios — shared by the live-runtime CLI, the
    runtime benchmarks and ad-hoc analysis so every surface reports the
    same numbers under the same names.

    When a runtime :class:`~repro.runtime.transport.TransportSummary` (or
    anything with a compatible ``to_dict``) is given, its flow-control
    facts join the summary under ``transport_*`` keys — queue
    high-watermarks, send stalls, shed frames and buffer-map desyncs
    (``transport_map_desyncs``) belong next to the traffic they
    throttled.  Note the ledger's bit counts are *model* bits (declared
    segment sizes); the physical byte count of the encoded frames lives
    in ``RuntimeResult.bytes_on_wire``, not here.
    """
    summary: Dict[str, float] = {}
    for kind in ledger.bits:
        summary[f"bits_{kind.value}"] = float(ledger.bits_of(kind))
        summary[f"count_{kind.value}"] = float(ledger.count_of(kind))
    summary["total_bits"] = ledger.total_bits()
    summary["total_messages"] = float(ledger.total_count())
    summary["control_overhead"] = float(ledger.control_overhead())
    summary["prefetch_overhead"] = float(ledger.prefetch_overhead())
    if transport is not None:
        for key, value in transport.to_dict().items():
            summary[f"transport_{key}"] = float(value)
    return summary


def throughput_scaling(
    throughput_by_shards: Mapping[int, float]
) -> Dict[int, Dict[str, float]]:
    """Speedup and parallel efficiency of a shard-count scaling sweep.

    Given ``{shard_count: aggregate throughput}`` (e.g. the cluster
    benchmark's messages/sec at 1/2/4 shards), returns per shard count
    the ``speedup`` over the smallest swept count and the ``efficiency``
    (speedup divided by the shard-count ratio — 1.0 is perfect linear
    scaling).  The baseline is the smallest shard count, which makes the
    numbers read as "what did adding processes buy".
    """
    if not throughput_by_shards:
        return {}
    base_shards = min(throughput_by_shards)
    base = throughput_by_shards[base_shards]
    scaling: Dict[int, Dict[str, float]] = {}
    for shards in sorted(throughput_by_shards):
        speedup = throughput_by_shards[shards] / base if base > 0 else 0.0
        ratio = shards / base_shards
        scaling[shards] = {
            "speedup": float(speedup),
            "efficiency": float(speedup / ratio) if ratio > 0 else 0.0,
        }
    return scaling


def moving_average(series: Sequence[float], window: int) -> List[float]:
    """Simple trailing moving average (window clipped at the series start)."""
    if window <= 0:
        raise ValueError("window must be positive")
    result: List[float] = []
    for index in range(len(series)):
        start = max(0, index - window + 1)
        chunk = series[start : index + 1]
        result.append(float(sum(chunk) / len(chunk)))
    return result


def stable_phase_mean(series: Sequence[float], skip_fraction: float = 2 / 3) -> float:
    """Mean of the trailing part of a time series (the "stable phase")."""
    if not series:
        return 0.0
    if not (0.0 <= skip_fraction < 1.0):
        raise ValueError("skip_fraction must be in [0, 1)")
    start = int(len(series) * skip_fraction)
    tail = list(series[start:]) or [series[-1]]
    return float(sum(tail) / len(tail))


def time_to_threshold(
    times: Sequence[float], series: Sequence[float], threshold: float
) -> Optional[float]:
    """First time the series reaches ``threshold`` (None if it never does)."""
    for time, value in zip(times, series):
        if value >= threshold:
            return float(time)
    return None


def render_table(
    records: Sequence[ExperimentRecord], columns: Sequence[str], precision: int = 4
) -> str:
    """Render experiment records as a plain-text table (for EXPERIMENTS.md)."""
    header = ["label", *columns]
    rows = [
        [record.label]
        + [
            f"{record.values.get(col, float('nan')):.{precision}f}"
            for col in columns
        ]
        for record in records
    ]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        " | ".join(header[i].ljust(widths[i]) for i in range(len(header))),
        "-|-".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rows:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)
