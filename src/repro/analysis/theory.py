"""Analytical models from the paper.

Section 5.1 models the arrival of data segments at a node as a Poisson
process with rate ``λ`` (approximately the node's inbound rate ``I``).  With
playback rate ``p`` and scheduling period ``τ``:

* the on-demand retrieval is expected to be triggered whenever fewer than
  ``p·τ`` segments arrive in a period, i.e. with probability
  ``P{N(τ) ≤ p·τ}`` (equation (11));
* the expected number of missed segments in such a period is
  ``N_miss = Σ_{n<pτ} (pτ − n)·P{N(τ)=n}`` (equation (12));
* with every segment backed up on ``k`` nodes and a per-holder failure
  probability of ½, a single pre-fetch fails with probability ``(½)^k`` and
  all ``N_miss`` pre-fetches succeed with probability
  ``(1 − (½)^k)^{N_miss}``;
* the playback continuity without and with pre-fetching is then
  ``PC_old = 1 − P{N(τ) ≤ p·τ}`` (equation (13)) and
  ``PC_new = 1 − P{N(τ) ≤ p·τ}·(1 − (1 − (½)^k)^{N_miss})`` (equation (14)).

Section 2 also quotes two gossip-coverage results we expose for completeness:
Kermarrec et al.'s ``e^{-e^{-k}}`` coverage when every node gossips to
``log n + k`` others, and CoolStreaming's coverage ratio at overlay distance
``d``, ``1 − e^{−M(M−1)^{d−2}/((M−2)n)}``.  The appendix bound on DHT routing
hops, ``log N / log(4/3)``, is exposed as :func:`dht_hop_upper_bound`.
"""

from __future__ import annotations

import math


# --------------------------------------------------------------------------- #
# Poisson machinery
# --------------------------------------------------------------------------- #
def poisson_pmf(n: int, mean: float) -> float:
    """``P{N = n}`` for a Poisson random variable with the given mean."""
    if n < 0:
        return 0.0
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if mean == 0:
        return 1.0 if n == 0 else 0.0
    # Work in log space to stay finite for large means.
    log_p = -mean + n * math.log(mean) - math.lgamma(n + 1)
    return math.exp(log_p)


def poisson_cdf(n: int, mean: float) -> float:
    """``P{N <= n}`` for a Poisson random variable with the given mean."""
    if n < 0:
        return 0.0
    return min(1.0, sum(poisson_pmf(i, mean) for i in range(0, n + 1)))


# --------------------------------------------------------------------------- #
# Playback-continuity model (equations (11)-(15))
# --------------------------------------------------------------------------- #
def trigger_probability(arrival_rate: float, playback_rate: float, period: float) -> float:
    """Probability the on-demand retrieval is triggered in a period (eq. (11)).

    ``P{N(τ) ≤ p·τ}`` with ``N(τ)`` Poisson of mean ``λ·τ``.
    """
    _validate_rates(arrival_rate, playback_rate, period)
    needed = int(playback_rate * period)
    return poisson_cdf(needed, arrival_rate * period)


def expected_missed_segments(
    arrival_rate: float, playback_rate: float, period: float
) -> float:
    """Expected number of missed segments per period (equation (12))."""
    _validate_rates(arrival_rate, playback_rate, period)
    needed = int(playback_rate * period)
    mean = arrival_rate * period
    total = 0.0
    for n in range(0, needed):
        total += (needed - n) * poisson_pmf(n, mean)
    return total


def prefetch_failure_probability(replicas: int) -> float:
    """Probability a single pre-fetch finds no holder with the data: ``(½)^k``."""
    if replicas < 0:
        raise ValueError("replicas must be >= 0")
    return 0.5 ** replicas


def prefetch_success_probability(replicas: int, missed_segments: float) -> float:
    """Probability all ``N_miss`` pre-fetches of a period succeed."""
    if missed_segments < 0:
        raise ValueError("missed_segments must be >= 0")
    return (1.0 - prefetch_failure_probability(replicas)) ** missed_segments


def playback_continuity_old(
    arrival_rate: float, playback_rate: float, period: float
) -> float:
    """``PC_old = 1 − P{N(τ) ≤ p·τ}`` (equation (13))."""
    return 1.0 - trigger_probability(arrival_rate, playback_rate, period)


def playback_continuity_new(
    arrival_rate: float,
    playback_rate: float,
    period: float,
    replicas: int,
) -> float:
    """``PC_new`` with DHT-assisted pre-fetching (equation (14))."""
    p_trigger = trigger_probability(arrival_rate, playback_rate, period)
    n_miss = expected_missed_segments(arrival_rate, playback_rate, period)
    p_all = prefetch_success_probability(replicas, n_miss)
    return 1.0 - p_trigger * (1.0 - p_all)


def playback_continuity_delta(
    arrival_rate: float,
    playback_rate: float,
    period: float,
    replicas: int,
) -> float:
    """``Δ = PC_new − PC_old`` (equation (15))."""
    p_trigger = trigger_probability(arrival_rate, playback_rate, period)
    n_miss = expected_missed_segments(arrival_rate, playback_rate, period)
    return p_trigger * prefetch_success_probability(replicas, n_miss)


def _validate_rates(arrival_rate: float, playback_rate: float, period: float) -> None:
    if arrival_rate < 0:
        raise ValueError("arrival_rate must be >= 0")
    if playback_rate <= 0:
        raise ValueError("playback_rate must be positive")
    if period <= 0:
        raise ValueError("period must be positive")


# --------------------------------------------------------------------------- #
# Gossip coverage and DHT bounds (Sections 2, 4.1 and the appendix)
# --------------------------------------------------------------------------- #
def gossip_coverage_probability(fanout_excess: float) -> float:
    """Kermarrec et al.: gossiping to ``log n + k`` nodes covers everyone with
    probability ``e^{-e^{-k}}`` (``fanout_excess`` is ``k``)."""
    return math.exp(-math.exp(-fanout_excess))


def coverage_ratio_at_distance(
    num_neighbors: int, num_nodes: int, distance: int
) -> float:
    """CoolStreaming's coverage ratio at overlay distance ``d``:
    ``1 − exp(−M(M−1)^{d−2} / ((M−2)·n))``.

    Only defined for ``M > 2`` and ``d >= 2``.
    """
    if num_neighbors <= 2:
        raise ValueError("the formula requires M > 2")
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if distance < 2:
        raise ValueError("distance must be >= 2")
    m = float(num_neighbors)
    exponent = m * (m - 1.0) ** (distance - 2) / ((m - 2.0) * num_nodes)
    return 1.0 - math.exp(-exponent)


def dht_hop_upper_bound(id_space: int) -> float:
    """Appendix bound on greedy DHT routing hops: ``log N / log(4/3)``."""
    if id_space < 2:
        return 0.0
    return math.log2(id_space) / math.log2(4.0 / 3.0)


def expected_dht_lookup_hops(num_nodes: int) -> float:
    """The paper's empirical observation: average routing hops ``≈ log2(n)/2``."""
    if num_nodes < 2:
        return 0.0
    return math.log2(num_nodes) / 2.0


def expected_fetch_time(num_nodes: int, hop_latency: float) -> float:
    """``t_fetch ≈ (log2(n)/2 + 3) · t_hop`` (equation (7))."""
    if hop_latency < 0:
        raise ValueError("hop_latency must be >= 0")
    return (expected_dht_lookup_hops(max(2, num_nodes)) + 3.0) * hop_latency


def expected_control_overhead(
    num_neighbors: int,
    buffer_capacity: int = 600,
    anchor_bits: int = 20,
    segment_bits: int = 30 * 1024,
    playback_rate: float = 10.0,
) -> float:
    """Section 5.4.2's estimate of the control overhead, ``≈ M / 495`` with the
    paper's defaults: each round a node fetches ``M`` buffer maps of
    ``B + 20`` bits while receiving ``p`` segments of 30 Kbit."""
    if num_neighbors < 1:
        raise ValueError("num_neighbors must be >= 1")
    map_bits = buffer_capacity + anchor_bits
    return (map_bits * num_neighbors) / (segment_bits * playback_rate)


def expected_prefetch_cost_bits(
    replicas: int,
    num_nodes: int,
    routing_message_bits: int = 80,
    segment_bits: int = 30 * 1024,
) -> float:
    """Section 5.4.3's estimate of the cost of pre-fetching one segment:
    ``(k·(log2(n)/2 + 1) + 1)·80 + 30·1024`` bits."""
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    n = max(2, num_nodes)
    messages = replicas * (math.log2(n) / 2.0 + 1.0) + 1.0
    return messages * routing_message_bits + segment_bits
