"""Analysis: the paper's theory (Section 5.1) and metric aggregation helpers."""

from repro.analysis.metrics import ExperimentRecord, summarize_runs
from repro.analysis.theory import (
    coverage_ratio_at_distance,
    dht_hop_upper_bound,
    expected_missed_segments,
    gossip_coverage_probability,
    playback_continuity_delta,
    playback_continuity_new,
    playback_continuity_old,
    poisson_cdf,
    prefetch_failure_probability,
    prefetch_success_probability,
)

__all__ = [
    "poisson_cdf",
    "playback_continuity_old",
    "playback_continuity_new",
    "playback_continuity_delta",
    "expected_missed_segments",
    "prefetch_failure_probability",
    "prefetch_success_probability",
    "gossip_coverage_probability",
    "coverage_ratio_at_distance",
    "dht_hop_upper_bound",
    "ExperimentRecord",
    "summarize_runs",
]
