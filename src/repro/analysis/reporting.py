"""Plain-text reporting helpers for simulation results.

The experiment CLI and the benchmark suite print their regenerated
rows/series; this module centralises the formatting of a full
:class:`~repro.core.system.SimulationResult` (and of side-by-side
comparisons between the two systems) so the output reads the same everywhere
and can be diffed against ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.core.system import SimulationResult
from repro.net.message import MessageKind


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A coarse ASCII sparkline of a [0, 1] series (for terminal output)."""
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    if len(values) > width:
        # Downsample by averaging consecutive chunks.
        chunk = len(values) / width
        sampled = [
            sum(values[int(i * chunk): max(int(i * chunk) + 1, int((i + 1) * chunk))])
            / max(1, len(values[int(i * chunk): max(int(i * chunk) + 1, int((i + 1) * chunk))]))
            for i in range(width)
        ]
    else:
        sampled = list(values)
    out = []
    for value in sampled:
        clamped = min(1.0, max(0.0, float(value)))
        out.append(glyphs[int(round(clamped * (len(glyphs) - 1)))])
    return "".join(out)


def describe_result(result: SimulationResult) -> str:
    """Multi-line description of one run (continuity + overheads + traffic)."""
    totals = result.traffic.cumulative()
    lines = [
        f"system              : {result.system}",
        f"nodes / rounds      : {result.config.num_nodes} / {result.config.rounds}",
        f"environment         : "
        f"{'dynamic' if result.config.is_dynamic else 'static'}, "
        f"{'heterogeneous' if result.config.heterogeneous else 'homogeneous'}",
        f"stable continuity   : {result.stable_continuity():.4f}",
        f"continuity track    : {sparkline(result.continuity_series())}",
        f"control overhead    : {result.control_overhead():.4f}",
        f"pre-fetch overhead  : {result.prefetch_overhead():.4f}",
        f"data traffic (Mbit) : "
        f"{totals.bits_of(MessageKind.DATA_SCHEDULED) / 1e6:.2f} scheduled, "
        f"{totals.bits_of(MessageKind.DATA_PREFETCH) / 1e6:.2f} pre-fetched",
        f"control traffic     : "
        f"{totals.bits_of(MessageKind.BUFFER_MAP) / 1e6:.2f} Mbit buffer maps, "
        f"{totals.bits_of(MessageKind.DHT_ROUTING) / 1e6:.3f} Mbit DHT routing",
    ]
    return "\n".join(lines)


def compare_results(results: Mapping[str, SimulationResult]) -> str:
    """Side-by-side summary table of several runs keyed by label."""
    header = (
        f"{'run':<22} | {'continuity':>10} | {'control':>8} | {'pre-fetch':>9}"
    )
    lines = [header, "-" * len(header)]
    for label, result in results.items():
        lines.append(
            f"{label:<22} | {result.stable_continuity():>10.4f} | "
            f"{result.control_overhead():>8.4f} | {result.prefetch_overhead():>9.4f}"
        )
    return "\n".join(lines)


def continuity_increment(results: Mapping[str, SimulationResult]) -> float:
    """``Δ = PC_new − PC_old`` between the two systems of a comparison run."""
    try:
        new = results["continustreaming"].stable_continuity()
        old = results["coolstreaming"].stable_continuity()
    except KeyError as error:  # pragma: no cover - defensive
        raise KeyError(
            "expected results for both 'continustreaming' and 'coolstreaming'"
        ) from error
    return new - old


def per_round_table(result: SimulationResult, every: int = 1) -> str:
    """Round-by-round table (time, continuity, scheduled, pre-fetched)."""
    if every < 1:
        raise ValueError("every must be >= 1")
    header = f"{'t (s)':>6} | {'continuity':>10} | {'scheduled':>9} | {'prefetched':>10}"
    lines = [header, "-" * len(header)]
    for report in result.rounds[::every]:
        lines.append(
            f"{report.time:>6.1f} | {report.continuity:>10.3f} | "
            f"{report.segments_scheduled:>9} | {report.segments_prefetched:>10}"
        )
    return "\n".join(lines)
