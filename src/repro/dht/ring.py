"""Identifier-ring arithmetic.

All DHT reasoning happens on a ring of ``N`` identifiers (``N`` = maximum
number of nodes the overlay can accommodate; the paper's Figure 3 experiment
uses ``N = 8192``).  Distances are *clockwise*: ``distance(a, b)`` is how far
one must travel clockwise from ``a`` to reach ``b``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence


class IdRing:
    """Modular arithmetic helpers on an identifier space of size ``N``."""

    __slots__ = ("size",)

    def __init__(self, size: int) -> None:
        if size < 2:
            raise ValueError(f"ID space must have at least 2 ids, got {size}")
        self.size = int(size)

    # ------------------------------------------------------------------- basics
    @property
    def bits(self) -> int:
        """Number of levels ``log2(N)`` (rounded up) a peer table needs."""
        return max(1, math.ceil(math.log2(self.size)))

    def normalize(self, identifier: int) -> int:
        """Map any integer onto the ring."""
        return int(identifier) % self.size

    def clockwise_distance(self, a: int, b: int) -> int:
        """Clockwise distance from ``a`` to ``b`` (0 when equal)."""
        return (self.normalize(b) - self.normalize(a)) % self.size

    def counter_clockwise_distance(self, a: int, b: int) -> int:
        """Counter-clockwise distance from ``a`` to ``b``."""
        return (self.normalize(a) - self.normalize(b)) % self.size

    def in_clockwise_interval(self, x: int, start: int, end: int) -> bool:
        """True if ``x`` lies in the half-open clockwise interval ``[start, end)``.

        An empty interval (``start == end``) contains nothing.
        """
        x, start, end = self.normalize(x), self.normalize(start), self.normalize(end)
        if start == end:
            return False
        return self.clockwise_distance(start, x) < self.clockwise_distance(start, end)

    # ---------------------------------------------------------------- selection
    def clockwise_closest(self, target: int, candidates: Iterable[int]) -> Optional[int]:
        """The candidate with the smallest clockwise distance *from itself to*
        ``target`` — i.e. the candidate that is counter-clockwise closest to the
        target, which is the node responsible for the key.

        Returns ``None`` when ``candidates`` is empty.
        """
        best: Optional[int] = None
        best_dist: Optional[int] = None
        for candidate in candidates:
            dist = self.clockwise_distance(candidate, target)
            if best_dist is None or dist < best_dist:
                best, best_dist = self.normalize(candidate), dist
        return best

    def responsible_node(self, key: int, node_ids: Sequence[int]) -> Optional[int]:
        """Node responsible for ``key``: the one counter-clockwise closest to it.

        Node ``n`` owns the keys in ``[n, successor(n))`` (equation (5) uses
        the interval ``[n, n1)`` where ``n1`` is ``n``'s clockwise-closest DHT
        peer), so the owner of ``key`` is the node with the smallest clockwise
        distance from itself to the key — equivalently the nearest node at or
        counter-clockwise of the key.
        """
        if not node_ids:
            return None
        best: Optional[int] = None
        best_dist: Optional[int] = None
        for node in node_ids:
            dist = self.clockwise_distance(node, key)
            if best_dist is None or dist < best_dist:
                best, best_dist = self.normalize(node), dist
        return best

    def level_of(self, node: int, peer: int) -> int:
        """DHT-peer level of ``peer`` relative to ``node``.

        Level ``i`` covers the clockwise interval ``[n + 2^(i-1), n + 2^i)``;
        level 1 covers distance exactly 1 ... (2).  Returns 0 when
        ``peer == node``.
        """
        dist = self.clockwise_distance(node, peer)
        if dist == 0:
            return 0
        return dist.bit_length()

    def level_interval(self, node: int, level: int) -> tuple[int, int]:
        """The half-open clockwise interval ``[n + 2^(i-1), n + 2^i)`` of ``level``.

        For identifier spaces whose size is not a power of two, the top
        level's nominal end would wrap past the owner and overlap the lower
        levels, so both offsets are clamped at the ring size; the clamped top
        level then simply covers "the rest of the ring" and the levels
        partition every non-owner id exactly once.
        """
        if level < 1:
            raise ValueError("level must be >= 1")
        start_offset = min(1 << (level - 1), self.size)
        end_offset = min(1 << level, self.size)
        start = self.normalize(node + start_offset)
        end = self.normalize(node + end_offset)
        return start, end

    def spread_ids(self, count: int) -> List[int]:
        """``count`` ids spread (approximately) evenly around the ring."""
        if count <= 0:
            return []
        step = self.size / count
        return sorted({self.normalize(round(i * step)) for i in range(count)})
