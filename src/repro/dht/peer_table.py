"""The Peer Table of Section 4.1.

Every node keeps a Peer Table with three parts:

1. **Connected Neighbors** — ``M`` neighbours in the unstructured overlay,
   connected by (simulated) TCP and used for the periodic buffer-map/data
   exchange.  A failed or unproductive neighbour is replaced by the overheard
   node with the lowest latency.
2. **DHT Peers** — ``log N`` peers ordered by level.  The level-``i`` peer of
   node ``n`` may be *any* node whose id lies in ``[n + 2^(i-1), n + 2^i)``
   (mod ``N``): the DHT is loosely organised, so maintenance is cheap.
3. **Overheard Nodes** — the latest ``H`` nodes overheard from routing
   messages passing by (``H = 20`` suffices per the paper); both other parts
   are refreshed from this list at no extra communication cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

from repro.dht.ring import IdRing


@dataclass(frozen=True)
class NeighborEntry:
    """A connected (gossip) neighbour row of the Peer Table."""

    peer_id: int
    latency_ms: float
    recent_supply_rate: float = 0.0  # segments/s supplied to us recently

    def with_supply_rate(self, rate: float) -> "NeighborEntry":
        """Copy of the entry with an updated supply rate."""
        return replace(self, recent_supply_rate=float(rate))


@dataclass(frozen=True)
class DhtPeerEntry:
    """A DHT peer row: the level-``i`` finger of the local node."""

    level: int
    peer_id: int
    latency_ms: float


@dataclass(frozen=True)
class OverheardEntry:
    """A recently overheard node (from routing messages passing by)."""

    peer_id: int
    latency_ms: float
    overheard_at: float = 0.0


@dataclass
class PeerTable:
    """The three-part Peer Table of one node.

    Attributes:
        owner_id: id of the node owning this table.
        ring: the identifier ring (defines levels and distances).
        max_neighbors: ``M`` — number of connected neighbours to keep.
        max_overheard: ``H`` — number of overheard nodes to remember.
    """

    owner_id: int
    ring: IdRing
    max_neighbors: int = 5
    max_overheard: int = 20
    neighbors: Dict[int, NeighborEntry] = field(default_factory=dict)
    dht_peers: Dict[int, DhtPeerEntry] = field(default_factory=dict)  # level -> entry
    overheard: List[OverheardEntry] = field(default_factory=list)

    # ------------------------------------------------------- connected neighbours
    def neighbor_ids(self) -> List[int]:
        """Ids of the connected neighbours (sorted)."""
        return sorted(self.neighbors)

    def has_neighbor(self, peer_id: int) -> bool:
        return peer_id in self.neighbors

    def neighbor_slots_free(self) -> int:
        """How many more connected neighbours can be added."""
        return max(0, self.max_neighbors - len(self.neighbors))

    def add_neighbor(self, entry: NeighborEntry) -> bool:
        """Add a connected neighbour if there is a free slot and it is new."""
        if entry.peer_id == self.owner_id:
            return False
        if entry.peer_id in self.neighbors:
            return False
        if len(self.neighbors) >= self.max_neighbors:
            return False
        self.neighbors[entry.peer_id] = entry
        return True

    def remove_neighbor(self, peer_id: int) -> Optional[NeighborEntry]:
        """Drop a connected neighbour (returns the removed entry, if any)."""
        return self.neighbors.pop(peer_id, None)

    def record_supply(self, peer_id: int, rate: float) -> None:
        """Update the recent supply rate of a connected neighbour."""
        entry = self.neighbors.get(peer_id)
        if entry is not None:
            self.neighbors[peer_id] = entry.with_supply_rate(rate)

    def worst_neighbor(self) -> Optional[int]:
        """The connected neighbour with the lowest recent supply rate."""
        if not self.neighbors:
            return None
        return min(
            self.neighbors.values(), key=lambda e: (e.recent_supply_rate, e.peer_id)
        ).peer_id

    def replace_neighbor(self, old_id: int, new_entry: NeighborEntry) -> bool:
        """Replace a failed/unproductive neighbour with a new one."""
        if new_entry.peer_id == self.owner_id or new_entry.peer_id in self.neighbors:
            return False
        self.neighbors.pop(old_id, None)
        if len(self.neighbors) >= self.max_neighbors:
            return False
        self.neighbors[new_entry.peer_id] = new_entry
        return True

    # ----------------------------------------------------------------- DHT peers
    def dht_peer_ids(self) -> List[int]:
        """Ids of the current DHT peers (ordered by level)."""
        return [self.dht_peers[level].peer_id for level in sorted(self.dht_peers)]

    def dht_peer_at_level(self, level: int) -> Optional[DhtPeerEntry]:
        return self.dht_peers.get(level)

    def set_dht_peer(self, peer_id: int, latency_ms: float) -> Optional[int]:
        """Install ``peer_id`` as the DHT peer of its level.

        The level is derived from the clockwise distance ``owner -> peer``;
        a peer at distance 0 (the owner itself) is rejected.  Returns the
        level used, or ``None`` if rejected.
        """
        if peer_id == self.owner_id:
            return None
        level = self.ring.level_of(self.owner_id, peer_id)
        if level < 1 or level > self.ring.bits:
            return None
        self.dht_peers[level] = DhtPeerEntry(
            level=level, peer_id=self.ring.normalize(peer_id), latency_ms=latency_ms
        )
        return level

    def remove_dht_peer(self, peer_id: int) -> None:
        """Forget every finger pointing at ``peer_id`` (after its failure)."""
        stale = [lvl for lvl, entry in self.dht_peers.items() if entry.peer_id == peer_id]
        for lvl in stale:
            del self.dht_peers[lvl]

    def closest_dht_peer(self) -> Optional[int]:
        """The clockwise-closest DHT peer (``n1`` in equation (5)).

        This is the peer at the lowest populated level; ties cannot happen
        because each level holds one entry.
        """
        if not self.dht_peers:
            return None
        lowest = min(self.dht_peers)
        return self.dht_peers[lowest].peer_id

    def routing_candidates(self) -> List[int]:
        """All ids usable as next hops: DHT peers plus connected neighbours.

        The paper routes over the DHT peers; adding connected neighbours only
        improves the loose ring's success rate and does not change levels.
        """
        ids = set(self.dht_peer_ids())
        ids.update(self.neighbors)
        ids.discard(self.owner_id)
        return sorted(ids)

    # ------------------------------------------------------------ overheard nodes
    def overheard_ids(self) -> List[int]:
        return [entry.peer_id for entry in self.overheard]

    def record_overheard(self, entry: OverheardEntry) -> None:
        """Record an overheard node, keeping at most ``max_overheard`` entries.

        Newest entries are kept at the end; re-hearing a node refreshes its
        position and latency estimate.
        """
        if entry.peer_id == self.owner_id:
            return
        self.overheard = [e for e in self.overheard if e.peer_id != entry.peer_id]
        self.overheard.append(entry)
        if len(self.overheard) > self.max_overheard:
            self.overheard = self.overheard[-self.max_overheard:]

    def forget_overheard(self, peer_id: int) -> None:
        """Drop a departed node from the overheard list."""
        self.overheard = [e for e in self.overheard if e.peer_id != peer_id]

    def lowest_latency_overheard(
        self, exclude: Optional[Iterable[int]] = None
    ) -> Optional[OverheardEntry]:
        """The overheard node with the lowest latency, excluding ``exclude``."""
        banned = set(exclude or ())
        banned.add(self.owner_id)
        candidates = [e for e in self.overheard if e.peer_id not in banned]
        if not candidates:
            return None
        return min(candidates, key=lambda e: (e.latency_ms, e.peer_id))

    # ------------------------------------------------------------------- refresh
    def refresh_dht_peers_from_overheard(self) -> int:
        """Fill / renew DHT-peer levels from the overheard list.

        For every overheard node whose level currently has no entry (or whose
        entry is the same node with a staler latency), install it.  Returns
        the number of levels updated.  This is the "node state update ...
        mainly achieved by overhearing the routing messages passing by" of
        Section 3, and costs no communication.
        """
        updated = 0
        for entry in self.overheard:
            level = self.ring.level_of(self.owner_id, entry.peer_id)
            if level < 1 or level > self.ring.bits:
                continue
            current = self.dht_peers.get(level)
            if current is None or current.peer_id == entry.peer_id:
                self.dht_peers[level] = DhtPeerEntry(
                    level=level, peer_id=entry.peer_id, latency_ms=entry.latency_ms
                )
                updated += 1
        return updated

    def adopt_base_table(self, other: "PeerTable") -> None:
        """Use another node's table as the base of this one (join bootstrap).

        The joining node copies the bootstrap node's DHT peers (re-levelled
        relative to itself) and treats its neighbours as overheard candidates.
        """
        for entry in other.dht_peers.values():
            self.set_dht_peer(entry.peer_id, entry.latency_ms)
        for neigh in other.neighbors.values():
            self.record_overheard(
                OverheardEntry(peer_id=neigh.peer_id, latency_ms=neigh.latency_ms)
            )
        self.record_overheard(
            OverheardEntry(peer_id=other.owner_id, latency_ms=0.0)
        )
        self.refresh_dht_peers_from_overheard()
