"""Backup-key placement.

Equation (5) of the paper: node ``n`` must store in its VoD backup every
received segment whose id satisfies ``hash(id * i) % N ∈ [n, n1)`` for some
``i = 1..k``, where ``n1`` is ``n``'s clockwise-closest DHT peer.  Using
``id * i`` (rather than ``id + i``) hashes consecutive segment ids to
dispersed ring positions, balancing backup load across nodes.

``hash()`` can be any common hash function; we use a 64-bit splitmix-style
integer mix, which is deterministic across Python processes (unlike the
built-in ``hash``) and fast enough to be called millions of times per run.
"""

from __future__ import annotations

from typing import List


def _mix64(value: int) -> int:
    """SplitMix64 finaliser — a well-distributed, deterministic 64-bit mix."""
    value &= 0xFFFF_FFFF_FFFF_FFFF
    value = (value + 0x9E37_79B9_7F4A_7C15) & 0xFFFF_FFFF_FFFF_FFFF
    value ^= value >> 30
    value = (value * 0xBF58_476D_1CE4_E5B9) & 0xFFFF_FFFF_FFFF_FFFF
    value ^= value >> 27
    value = (value * 0x94D0_49BB_1331_11EB) & 0xFFFF_FFFF_FFFF_FFFF
    value ^= value >> 31
    return value


def segment_hash(value: int, id_space: int) -> int:
    """``hash(value) % N`` with the deterministic 64-bit mix."""
    if id_space < 2:
        raise ValueError("id_space must be >= 2")
    return _mix64(int(value)) % int(id_space)


def backup_keys(segment_id: int, replicas: int, id_space: int) -> List[int]:
    """The ``k`` ring keys where ``segment_id`` must be backed up.

    Key ``i`` (1-based) is ``hash(segment_id * i) % N``.  Keys may collide for
    small id spaces; callers that need distinct holders should deduplicate.
    """
    if segment_id < 0:
        raise ValueError("segment_id must be >= 0")
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    return [segment_hash(segment_id * i, id_space) for i in range(1, replicas + 1)]


def is_backup_responsible(
    segment_id: int,
    replicas: int,
    id_space: int,
    node_id: int,
    successor_id: int,
) -> bool:
    """True if the node owning ``[node_id, successor_id)`` must back up the segment.

    ``successor_id`` is the node's clockwise-closest DHT peer (``n1`` in the
    paper).  When a node is alone on the ring (``node_id == successor_id``)
    it owns everything.
    """
    node_id %= id_space
    successor_id %= id_space
    if node_id == successor_id:
        return True
    for key in backup_keys(segment_id, replicas, id_space):
        if _in_clockwise_interval(key, node_id, successor_id, id_space):
            return True
    return False


def _in_clockwise_interval(x: int, start: int, end: int, size: int) -> bool:
    return (x - start) % size < (end - start) % size
