"""Standalone DHT network used for the Figure 3 experiment.

Figure 3 evaluates the loosely organised DHT on its own: for a fixed id space
``N = 8192`` and a varying number of joined nodes ``n < N``, it plots the
average routing hops (close to ``log2(n) / 2``) and the query success rate
(close to 1.0 even when the overlay is sparse).

The :class:`DhtNetwork` here builds such an overlay: every joined node fills
each finger level with a random alive node from the level interval (the
"loose" organisation — any node in ``[n + 2^(i-1), n + 2^i)`` is acceptable)
and greedy routing is performed over those tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dht.peer_table import PeerTable
from repro.dht.ring import IdRing
from repro.dht.routing import GreedyRouter, RouteOutcome


@dataclass(frozen=True)
class LookupResult:
    """Aggregate statistics of a batch of random lookups."""

    lookups: int
    average_hops: float
    success_rate: float
    max_hops: int


class DhtNetwork:
    """A population of DHT nodes with loosely organised finger tables.

    Args:
        id_space: size ``N`` of the identifier space.
        rng: random stream used for id assignment and finger selection.
    """

    def __init__(self, id_space: int, rng: Optional[np.random.Generator] = None) -> None:
        self.ring = IdRing(id_space)
        self._rng = rng or np.random.default_rng(0)
        self._tables: Dict[int, PeerTable] = {}
        self._sorted_ids: List[int] = []
        self.router = GreedyRouter(self.ring, self._peers_of)

    # ------------------------------------------------------------------ members
    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._tables

    def node_ids(self) -> List[int]:
        """Sorted ids of the joined nodes."""
        return list(self._sorted_ids)

    def table_of(self, node_id: int) -> PeerTable:
        """Peer table of a joined node."""
        return self._tables[node_id]

    def _peers_of(self, node_id: int) -> Sequence[int]:
        table = self._tables.get(node_id)
        if table is None:
            return ()
        return table.routing_candidates()

    # -------------------------------------------------------------------- build
    def populate(self, num_nodes: int, max_neighbors: int = 5) -> List[int]:
        """Join ``num_nodes`` nodes with distinct random ids and build fingers.

        Returns the assigned ids (sorted).  Populating twice replaces the
        previous population.
        """
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if num_nodes > self.ring.size:
            raise ValueError("cannot join more nodes than the id space holds")
        ids = self._rng.choice(self.ring.size, size=num_nodes, replace=False)
        self._tables = {
            int(node_id): PeerTable(
                owner_id=int(node_id), ring=self.ring, max_neighbors=max_neighbors
            )
            for node_id in ids
        }
        self._sorted_ids = sorted(self._tables)
        self.rebuild_fingers()
        return list(self._sorted_ids)

    def add_node(self, node_id: int, max_neighbors: int = 5) -> PeerTable:
        """Join one node with a specific id and build its fingers."""
        node_id = self.ring.normalize(node_id)
        if node_id in self._tables:
            raise ValueError(f"node {node_id} already joined")
        table = PeerTable(owner_id=node_id, ring=self.ring, max_neighbors=max_neighbors)
        self._tables[node_id] = table
        self._sorted_ids = sorted(self._tables)
        self._fill_fingers(table)
        return table

    def remove_node(self, node_id: int) -> None:
        """Remove a node; other tables keep (now stale) references to it."""
        self._tables.pop(node_id, None)
        self._sorted_ids = sorted(self._tables)

    def rebuild_fingers(self) -> None:
        """(Re)build every node's finger table from the current population."""
        for table in self._tables.values():
            table.dht_peers.clear()
            self._fill_fingers(table)

    def _fill_fingers(self, table: PeerTable) -> None:
        """Fill each level with a random alive node from the level interval."""
        ids = np.asarray(self._sorted_ids, dtype=np.int64)
        if ids.size <= 1:
            return
        owner = table.owner_id
        for level in range(1, self.ring.bits + 1):
            start, end = self.ring.level_interval(owner, level)
            candidates = self._ids_in_interval(ids, start, end)
            if candidates.size == 0:
                continue
            peer = int(candidates[int(self._rng.integers(candidates.size))])
            if peer != owner:
                table.set_dht_peer(peer, latency_ms=50.0)

    def _ids_in_interval(
        self, sorted_ids: np.ndarray, start: int, end: int
    ) -> np.ndarray:
        """All joined ids inside the clockwise interval ``[start, end)``."""
        if start == end:
            return np.empty(0, dtype=np.int64)
        if start < end:
            lo = np.searchsorted(sorted_ids, start, side="left")
            hi = np.searchsorted(sorted_ids, end, side="left")
            return sorted_ids[lo:hi]
        # Wrapping interval: [start, N) U [0, end)
        lo = np.searchsorted(sorted_ids, start, side="left")
        hi = np.searchsorted(sorted_ids, end, side="left")
        return np.concatenate([sorted_ids[lo:], sorted_ids[:hi]])

    # ------------------------------------------------------------------ lookups
    def responsible_node(self, key: int) -> Optional[int]:
        """Globally correct owner of ``key`` (counter-clockwise closest node)."""
        if not self._sorted_ids:
            return None
        ids = self._sorted_ids
        key = self.ring.normalize(key)
        # Owner n satisfies: n is the largest id <= key, wrapping to the
        # largest id overall when key precedes every node id.
        import bisect

        idx = bisect.bisect_right(ids, key) - 1
        return ids[idx] if idx >= 0 else ids[-1]

    def lookup(self, origin: int, key: int) -> RouteOutcome:
        """Greedy lookup of ``key`` starting at ``origin``."""
        return self.router.route(origin, key, responsible=self.responsible_node(key))

    def run_random_lookups(
        self, num_lookups: int, rng: Optional[np.random.Generator] = None
    ) -> LookupResult:
        """Issue ``num_lookups`` lookups from random origins to random keys."""
        if not self._sorted_ids:
            raise RuntimeError("populate() the network before running lookups")
        rng = rng or self._rng
        hops: List[int] = []
        successes = 0
        ids = self._sorted_ids
        for _ in range(num_lookups):
            origin = ids[int(rng.integers(len(ids)))]
            key = int(rng.integers(self.ring.size))
            outcome = self.lookup(origin, key)
            hops.append(outcome.hops)
            if outcome.success:
                successes += 1
        return LookupResult(
            lookups=num_lookups,
            average_hops=float(np.mean(hops)) if hops else 0.0,
            success_rate=successes / num_lookups if num_lookups else 0.0,
            max_hops=int(max(hops)) if hops else 0,
        )
