"""Greedy clockwise DHT routing.

Routing a message towards a key is a simple greedy walk (Section 4.1): every
intermediate node forwards to the peer in its table that is clockwise closest
to the destination, until no closer peer exists.  The node at which the walk
stops is the one responsible for the key (counter-clockwise closest to it).
The appendix bounds the walk by ``log N / log(4/3) ≈ 2.41 log N`` hops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.dht.ring import IdRing


@dataclass(frozen=True)
class RouteOutcome:
    """Result of one greedy lookup.

    Attributes:
        target_key: the ring key that was looked up.
        path: node ids visited, starting at the query origin and ending at
            the node where the walk stopped.
        success: whether the final node is actually responsible for the key
            (i.e. matches the global counter-clockwise-closest node).  When
            the membership oracle is unavailable, success means the walk
            terminated normally (no dead end / loop / hop-budget overrun).
        hops: number of overlay hops taken (``len(path) - 1``).
    """

    target_key: int
    path: tuple[int, ...]
    success: bool

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)

    @property
    def final_node(self) -> Optional[int]:
        return self.path[-1] if self.path else None


class GreedyRouter:
    """Stateless greedy router over a membership/peer-table oracle.

    Args:
        ring: the identifier ring.
        peers_of: callable returning the routing candidates (peer ids) of a
            node — typically ``PeerTable.routing_candidates``.
        max_hops: hop budget; ``None`` uses 4x the theoretical upper bound,
            which only trips on genuinely broken tables.
    """

    def __init__(
        self,
        ring: IdRing,
        peers_of: Callable[[int], Sequence[int]],
        max_hops: Optional[int] = None,
    ) -> None:
        self.ring = ring
        self.peers_of = peers_of
        if max_hops is None:
            max_hops = 4 * int(2.41 * max(1, ring.bits)) + 8
        self.max_hops = int(max_hops)

    def route(
        self,
        origin: int,
        target_key: int,
        responsible: Optional[int] = None,
    ) -> RouteOutcome:
        """Route from ``origin`` towards ``target_key``.

        Args:
            origin: node id where the query starts.
            target_key: ring key being located.
            responsible: the globally correct owner of the key, if known
                (used to score success exactly as Figure 3 does); when
                ``None`` success is judged by normal termination alone.
        """
        target_key = self.ring.normalize(target_key)
        current = self.ring.normalize(origin)
        path: List[int] = [current]
        visited = {current}
        for _ in range(self.max_hops):
            current_dist = self.ring.clockwise_distance(current, target_key)
            if current_dist == 0:
                break
            candidates = self.peers_of(current)
            best: Optional[int] = None
            best_dist = current_dist
            for peer in candidates:
                peer = self.ring.normalize(peer)
                if peer in visited:
                    continue
                dist = self.ring.clockwise_distance(peer, target_key)
                if dist < best_dist:
                    best, best_dist = peer, dist
            if best is None:
                break  # no peer closer to the target: the walk stops here
            current = best
            visited.add(current)
            path.append(current)
        else:
            # Hop budget exhausted: treat as failure.
            return RouteOutcome(target_key=target_key, path=tuple(path), success=False)

        if responsible is not None:
            success = path[-1] == self.ring.normalize(responsible)
        else:
            success = True
        return RouteOutcome(target_key=target_key, path=tuple(path), success=success)

    @staticmethod
    def hop_upper_bound(id_space: int) -> float:
        """The appendix bound ``log N / log(4/3) ≈ 2.41 log N`` (log base 2)."""
        import math

        if id_space < 2:
            return 0.0
        return math.log2(id_space) / math.log2(4.0 / 3.0)
