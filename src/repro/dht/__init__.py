"""DHT substrate.

ContinuStreaming's structured overlay is a *loosely organised* ring DHT: node
``n`` keeps ``log N`` "DHT peers", where the level-``i`` peer may be any node
whose id falls inside ``[n + 2^(i-1), n + 2^i)`` (all arithmetic modulo the
ID-space size ``N``).  Routing towards a key is greedy: each intermediate
node forwards to the clockwise-closest peer to the destination until no
closer peer exists; the node counter-clockwise closest to the key is
responsible for it.  The appendix proves an upper bound of
``log N / log(4/3) ≈ 2.41 · log N`` hops per lookup.

Every data segment ``id`` is backed up at the ``k`` nodes responsible for the
keys ``hash(id · i) % N`` for ``i = 1..k`` (equation (5)); multiplying rather
than adding spreads consecutive ids across the ring to balance load.
"""

from repro.dht.hashing import backup_keys, segment_hash
from repro.dht.network import DhtNetwork, LookupResult
from repro.dht.peer_table import DhtPeerEntry, NeighborEntry, OverheardEntry, PeerTable
from repro.dht.ring import IdRing
from repro.dht.routing import GreedyRouter, RouteOutcome

__all__ = [
    "IdRing",
    "segment_hash",
    "backup_keys",
    "PeerTable",
    "NeighborEntry",
    "DhtPeerEntry",
    "OverheardEntry",
    "GreedyRouter",
    "RouteOutcome",
    "DhtNetwork",
    "LookupResult",
]
