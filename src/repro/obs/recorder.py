"""The observability recorder: trace spans, flight ring, postmortems.

Two implementations share one duck type:

* :data:`NULL_OBS` — the disabled plane.  ``enabled`` and ``tracing``
  are ``False`` and every method is a no-op, so instrumented call sites
  cost one attribute read on the hot path and a virtual-clock run with
  obs off is bit-identical to one with no obs code at all (pinned by
  ``tests/test_obs.py``).
* :class:`ObsRecorder` — the live plane.  It owns the
  :class:`~repro.obs.metrics.MetricsRegistry`, the sampled
  segment-journey span log, the bounded flight-recorder ring of rare
  structural events, and the postmortem dumps taken on stall detection,
  shard death or unhandled exceptions.

Determinism: trace sampling is counter-based (every ``trace_sample``-th
request), never an RNG draw, and trace ids are
``(peer_id << 24) | counter`` — an obs-enabled virtual-clock run stays
deterministic and produces the same protocol behaviour as a disabled
one (only ``bytes_on_wire`` grows, by the 8-byte trace tail on sampled
frames; see ``docs/observability.md``).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.obs.flows import FlowMatrix
from repro.obs.metrics import MetricsRegistry, summarize_traces
from repro.obs.topo import TopologyObserver

__all__ = ["ObsConfig", "ObsRecorder", "NullObs", "NULL_OBS"]


@dataclasses.dataclass(frozen=True)
class ObsConfig:
    """What to record, and how much of it to keep.

    Attributes:
        metrics: keep the registry + per-period snapshots + flight ring.
        tracing: sample segment journeys and piggyback trace ids on wire.
        trace_sample: sample one in every N originated requests
            (``1`` traces everything; the counter is deterministic).
        series_window: per-metric ring length, in periods.
        flight_window: flight-recorder ring length, in events.
        span_limit: per-process span cap; excess increments
            ``spans_dropped`` instead of growing without bound.
        telemetry: stream live :class:`~repro.runtime.wire.TelemetryFrame`
            bodies to whatever sink the runner attaches (the cluster
            control pipe, ``--telemetry-out``, a ``HealthEngine``).  Off
            costs nothing; on without a sink costs nothing either.
        telemetry_every: emit one telemetry frame every N periods.
        flows: account per-link / per-shard-pair traffic in a bounded
            :class:`~repro.obs.flows.FlowMatrix` (requires ``metrics``).
        flow_top_links: how many heaviest directed peer links to keep
            exactly; the rest fold into an aggregate tail.
        topo: take per-period overlay snapshots (partner graph, gossip
            coverage, partition count) via
            :class:`~repro.obs.topo.TopologyObserver` (requires ``metrics``).
        topo_coverage_periods: a partner edge counts as *covered* when
            the partner's newest buffer map arrived within this many
            periods.
    """

    metrics: bool = True
    tracing: bool = True
    trace_sample: int = 16
    series_window: int = 512
    flight_window: int = 256
    span_limit: int = 50_000
    telemetry: bool = True
    telemetry_every: int = 1
    flows: bool = True
    flow_top_links: int = 32
    topo: bool = True
    topo_coverage_periods: int = 3

    def __post_init__(self) -> None:
        if self.trace_sample < 1:
            raise ValueError(f"trace_sample must be >= 1, got {self.trace_sample!r}")
        if self.telemetry_every < 1:
            raise ValueError(
                f"telemetry_every must be >= 1, got {self.telemetry_every!r}"
            )
        if self.flow_top_links < 1:
            raise ValueError(
                f"flow_top_links must be >= 1, got {self.flow_top_links!r}"
            )
        if self.topo_coverage_periods < 1:
            raise ValueError(
                f"topo_coverage_periods must be >= 1, got {self.topo_coverage_periods!r}"
            )


class NullObs:
    """The disabled plane: falsy flags, no-op methods, exports ``None``."""

    enabled = False
    tracing = False
    shard: Optional[int] = None
    #: Disabled flow matrix / topology observer: call sites cache these
    #: and guard on ``is not None``, so the hot path stays one load + test.
    flows: Optional[Any] = None
    topo: Optional[Any] = None

    def bind_shard(self, shard: int) -> None:
        pass

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def sample_trace(self, peer_id: int) -> int:
        return 0

    def span(self, event: str, trace: int, peer: int, segment: int, **extra: Any) -> None:
        pass

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def flight(self, event: str, **fields: Any) -> None:
        pass

    def flight_since(self, seen: int) -> "tuple[int, List[Dict[str, Any]]]":
        return (0, [])

    def postmortem(self, reason: str) -> None:
        pass

    def snapshot(self, period: int) -> None:
        pass

    def export(self) -> Optional[Dict[str, Any]]:
        return None


#: The shared disabled recorder.  Stateless, so one instance serves all.
NULL_OBS = NullObs()


class ObsRecorder:
    """The live observability plane for one swarm (process)."""

    def __init__(self, config: ObsConfig, shard: Optional[int] = None) -> None:
        self.config = config
        self.enabled = config.metrics
        self.tracing = config.tracing
        self.shard = shard
        self.metrics = MetricsRegistry(window=config.series_window)
        self.flows: Optional[FlowMatrix] = (
            FlowMatrix(top_links=config.flow_top_links)
            if config.metrics and config.flows
            else None
        )
        self.topo: Optional[TopologyObserver] = (
            TopologyObserver(coverage_periods=config.topo_coverage_periods)
            if config.metrics and config.topo
            else None
        )
        self.spans: List[Dict[str, Any]] = []
        self.spans_dropped = 0
        self._flight: Deque[Dict[str, Any]] = deque(maxlen=config.flight_window)
        self.flight_total = 0
        self.postmortems: List[Dict[str, Any]] = []
        self.miss_causes: Dict[str, int] = {}
        self._req_count = 0
        self._trace_counter = 0
        self._span_seq = 0
        self._clock: Optional[Callable[[], float]] = None
        self._last_t = 0.0

    # ------------------------------------------------------------------ wiring
    def bind_shard(self, shard: int) -> None:
        self.shard = shard

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the swarm's sim-time clock (``LiveSwarm.sim_now``)."""
        self._clock = clock

    def _now(self) -> float:
        clock = self._clock
        if clock is not None:
            try:
                self._last_t = clock()
            except RuntimeError:
                # sim_now needs a running loop; outside one (teardown,
                # coordinator-side postmortems) reuse the last stamp.
                pass
        return self._last_t

    # ----------------------------------------------------------------- tracing
    def sample_trace(self, peer_id: int) -> int:
        """A fresh trace id for this request, or 0 when not sampled."""
        self._req_count += 1
        if self._req_count % self.config.trace_sample:
            return 0
        self._trace_counter += 1
        return ((peer_id & 0xFFFFFFFF) << 24) | (self._trace_counter & 0xFFFFFF)

    def span(self, event: str, trace: int, peer: int, segment: int, **extra: Any) -> None:
        """Record one structured span on a sampled segment journey.

        Each span carries a per-recorder monotone ``seq`` so merged
        multi-shard span streams re-sort deterministically even when sim
        timestamps collide (see :func:`~repro.obs.metrics.merge_obs`).
        """
        if event == "miss":
            cause = extra.get("cause", "unknown")
            self.miss_causes[cause] = self.miss_causes.get(cause, 0) + 1
        if len(self.spans) >= self.config.span_limit:
            self.spans_dropped += 1
            return
        self._span_seq += 1
        span: Dict[str, Any] = {
            "trace": trace,
            "event": event,
            "peer": peer,
            "segment": segment,
            "t": self._now(),
            "seq": self._span_seq,
        }
        if self.shard is not None:
            span["shard"] = self.shard
        if extra:
            span.update(extra)
        self.spans.append(span)

    # ----------------------------------------------------------------- metrics
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.metrics.inc(name, amount)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def snapshot(self, period: int) -> None:
        self.metrics.snapshot(period)

    # ---------------------------------------------------------------- flight
    def flight(self, event: str, **fields: Any) -> None:
        """Append one rare structural event to the bounded flight ring."""
        entry: Dict[str, Any] = {"event": event, "t": self._now()}
        if self.shard is not None:
            entry["shard"] = self.shard
        if fields:
            entry.update(fields)
        self._flight.append(entry)
        self.flight_total += 1

    def flight_since(self, seen: int) -> "tuple[int, List[Dict[str, Any]]]":
        """``(total, new_events)`` since a caller last saw ``seen`` events.

        Feeds the telemetry stream's flight-recorder deltas: events that
        already scrolled out of the bounded ring are simply gone (the
        delta covers at most one ring's worth).
        """
        fresh = min(self.flight_total - seen, len(self._flight))
        if fresh <= 0:
            return (self.flight_total, [])
        ring = list(self._flight)
        return (self.flight_total, ring[-fresh:])

    def postmortem(self, reason: str) -> None:
        """Dump the flight ring: called on stall, shard death, crash."""
        self.postmortems.append(
            {
                "reason": reason,
                "t": self._now(),
                "shard": self.shard,
                "events": list(self._flight),
            }
        )

    # ----------------------------------------------------------------- export
    def export(self) -> Dict[str, Any]:
        """A plain picklable dict for ``RuntimeResult.obs``/``ShardResult.obs``."""
        out: Dict[str, Any] = {
            "shard": self.shard,
            "metrics": self.metrics.to_dict(),
            "spans": list(self.spans),
            "spans_dropped": self.spans_dropped,
            "flight": list(self._flight),
            "postmortems": list(self.postmortems),
            "traces": summarize_traces(self.spans),
        }
        if self.flows is not None and not self.flows.empty:
            out["flows"] = self.flows.to_dict()
        if self.topo is not None and self.topo.last is not None:
            out["topo"] = self.topo.to_dict()
        return out
