"""The live telemetry surface: streaming writers and the run cockpit.

Two consumers sit on the telemetry stream (``docs/observability.md`` →
*Live telemetry & SLOs*):

* :class:`TelemetryWriter` — appends one JSON line per frame/alert to a
  streaming JSONL file (flushed per record so ``tail -f`` and
  ``obs --live`` see it immediately) and maintains a Prometheus-style
  text exposition file next to it for external scrapers.
* :class:`Cockpit` — folds frames and alerts into a refreshing terminal
  dashboard: per-shard continuity sparklines, live gauges, the alert
  feed, and the running miss-cause histogram.  ``obs --live`` drives it
  from a telemetry JSONL (following appends like ``tail -f``); tests
  drive it directly from captured frames.

Neither consumer touches protocol state: both read the same frame
bodies the :class:`~repro.obs.health.HealthEngine` sees.
"""

from __future__ import annotations

import json
import re
import sys
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, IO, Iterator, List, Optional, Union

from repro.obs.health import Alert
from repro.obs.report import _sparkline

__all__ = ["TelemetryWriter", "Cockpit", "run_live", "load_telemetry_jsonl"]


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name to the Prometheus charset ``[a-zA-Z0-9_:]``.

    Scenario-derived names (miss causes, custom counters) can carry
    quotes, dashes, dots, even newlines; every invalid character becomes
    ``_`` and a leading digit gets an underscore prefix so the
    exposition file always parses.
    """
    name = _PROM_NAME_BAD.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


class TelemetryWriter:
    """Streams telemetry to JSONL and a Prometheus text exposition file.

    The JSONL is append-only and flushed per record: each line is
    ``{"type": "telemetry", ...frame body}`` or ``{"type": "alert",
    ...alert fields}``.  The exposition file (``<path>.prom`` by
    default) is atomically rewritten after every frame with the latest
    gauge levels and cumulative counters per shard, in the standard
    ``# TYPE`` / ``name{shard="N"} value`` text format.
    """

    def __init__(
        self,
        path: Union[str, Path],
        exposition_path: Optional[Union[str, Path]] = None,
        namespace: str = "continu",
    ) -> None:
        self.path = Path(path)
        if exposition_path is None:
            exposition_path = self.path.with_suffix(self.path.suffix + ".prom")
        self.exposition_path = Path(exposition_path)
        self.namespace = _prom_name(namespace)
        self._fh: Optional[IO[str]] = open(self.path, "w", encoding="utf-8")
        self._gauges: Dict[int, Dict[str, float]] = {}
        self._counters: Dict[int, Dict[str, float]] = {}
        self.frames = 0
        self.alerts = 0

    # ------------------------------------------------------------------ intake
    def frame(self, body: Dict[str, Any]) -> None:
        """Append one telemetry frame body and refresh the exposition."""
        self._write_line({"type": "telemetry", **body})
        shard = int(body.get("shard") or 0)
        gauges = self._gauges.setdefault(shard, {})
        # Names are sanitized at fold time, so two raw names colliding
        # after sanitization merge here instead of producing duplicate
        # sample lines in the exposition.
        for name, value in (body.get("gauges") or {}).items():
            gauges[_prom_name(name)] = float(value)
        gauges["continuity"] = float(body.get("continuity", 1.0))
        gauges["peers_live"] = float(body.get("peers_live", 0))
        gauges["telemetry_period"] = float(body.get("period", 0))
        topo = body.get("topo") or {}
        if "coverage" in topo:
            gauges["topo_gossip_coverage"] = float(topo["coverage"])
        if "components" in topo:
            gauges["topo_components"] = float(topo["components"])
        counters = self._counters.setdefault(shard, {})
        for name, delta in (body.get("counters") or {}).items():
            key = _prom_name(name)
            counters[key] = counters.get(key, 0.0) + float(delta)
        for cause, count in (body.get("miss_causes") or {}).items():
            key = _prom_name(f"miss_cause_{cause}")
            counters[key] = counters.get(key, 0.0) + float(count)
        for src, dst, _frames, nbytes in body.get("flows") or ():
            key = _prom_name(f"flow_bytes_s{src}_s{dst}")
            counters[key] = counters.get(key, 0.0) + float(nbytes)
        self.frames += 1
        self._write_exposition()

    def alert(self, alert: Union[Alert, Dict[str, Any]]) -> None:
        """Append one alert record to the stream."""
        fields = alert.to_dict() if isinstance(alert, Alert) else dict(alert)
        self._write_line({"type": "alert", **fields})
        self.alerts += 1

    # ----------------------------------------------------------------- output
    def _write_line(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def _format_number(self, value: float) -> str:
        return repr(int(value)) if float(value).is_integer() else repr(value)

    def _write_exposition(self) -> None:
        lines: List[str] = []
        names: Dict[str, str] = {}  # metric name -> prometheus type
        for per_shard, kind in ((self._gauges, "gauge"), (self._counters, "counter")):
            for metrics in per_shard.values():
                for name in metrics:
                    names.setdefault(name, kind)
        for name in sorted(names):
            kind = names[name]
            full = f"{self.namespace}_{name}"
            lines.append(f"# TYPE {full} {kind}")
            source = self._gauges if kind == "gauge" else self._counters
            for shard in sorted(source):
                value = source[shard].get(name)
                if value is None:
                    continue
                lines.append(
                    f'{full}{{shard="{_prom_escape(str(shard))}"}} '
                    f"{self._format_number(value)}"
                )
        tmp = self.exposition_path.with_suffix(self.exposition_path.suffix + ".tmp")
        tmp.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
        tmp.replace(self.exposition_path)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            self._write_exposition()

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _ShardView:
    """What the cockpit remembers about one shard."""

    __slots__ = ("continuity", "last", "periods")

    def __init__(self, window: int) -> None:
        self.continuity: Deque[float] = deque(maxlen=window)
        self.last: Dict[str, Any] = {}
        self.periods = 0

    def feed(self, body: Dict[str, Any]) -> None:
        self.continuity.append(float(body.get("continuity", 1.0)))
        self.last = body
        self.periods += 1


class Cockpit:
    """Folds the telemetry stream into a renderable dashboard state."""

    def __init__(self, window: int = 32, alert_tail: int = 8) -> None:
        self.window = window
        self.shards: Dict[int, _ShardView] = {}
        self.alerts: Deque[Dict[str, Any]] = deque(maxlen=alert_tail)
        self.alert_count = 0
        self.miss_causes: Dict[str, int] = {}
        #: Cumulative shard-pair flow matrix folded from frame deltas:
        #: ``(src_shard, dst_shard) -> [frames, bytes]``.
        self.flow_pairs: Dict[Any, List[int]] = {}
        self.frames = 0
        self.skipped = 0

    # ------------------------------------------------------------------ intake
    def feed(self, body: Dict[str, Any]) -> None:
        shard = int(body.get("shard") or 0)
        view = self.shards.get(shard)
        if view is None:
            view = self.shards[shard] = _ShardView(self.window)
        view.feed(body)
        for cause, count in (body.get("miss_causes") or {}).items():
            self.miss_causes[cause] = self.miss_causes.get(cause, 0) + int(count)
        for src, dst, frames, nbytes in body.get("flows") or ():
            acc = self.flow_pairs.setdefault((int(src), int(dst)), [0, 0])
            acc[0] += int(frames)
            acc[1] += int(nbytes)
        self.frames += 1

    def feed_alert(self, alert: Union[Alert, Dict[str, Any]]) -> None:
        fields = alert.to_dict() if isinstance(alert, Alert) else dict(alert)
        self.alerts.append(fields)
        self.alert_count += 1

    def feed_record(self, record: Dict[str, Any]) -> None:
        """Dispatch one JSONL record (``type`` = telemetry | alert)."""
        kind = record.get("type")
        if kind == "telemetry":
            self.feed(record)
        elif kind == "alert":
            self.feed_alert({k: v for k, v in record.items() if k != "type"})
        else:
            self.skipped += 1

    # ----------------------------------------------------------------- render
    def render(self, width: int = 32) -> str:
        period = max((v.last.get("period", 0) for v in self.shards.values()), default=0)
        lines = [
            f"live cockpit — period {period}, {len(self.shards)} shard(s), "
            f"{self.frames} frame(s), {self.alert_count} alert(s)"
        ]
        for shard in sorted(self.shards):
            view = self.shards[shard]
            last = view.last
            spark = _sparkline(list(view.continuity), width=width)
            gauges = last.get("gauges") or {}
            topo = last.get("topo") or {}
            topo_bits = ""
            if topo:
                topo_bits = (
                    f"  cov {topo.get('coverage', 0.0):.0%}"
                    f"  comp {topo.get('components', 0)}"
                )
            lines.append(
                f"  shard {shard}  cont {spark}  now {view.continuity[-1]:.3f}  "
                f"peers {last.get('peers_live', 0)}  "
                f"stretch {gauges.get('dilation_stretch', 1.0):.1f}x  "
                f"msgs {int(gauges.get('messages_sent', 0))}{topo_bits}"
            )
            socket = last.get("socket") or {}
            for other in sorted(socket):
                s = socket[other]
                lost = "  LOST" if s.get("lost") else ""
                lines.append(
                    f"    socket →{other}  out {s.get('frames_out', 0)}f/"
                    f"{s.get('bytes_out', 0)}B  in {s.get('frames_in', 0)}f/"
                    f"{s.get('bytes_in', 0)}B  resets {s.get('disconnects', 0)}{lost}"
                )
        if self.flow_pairs:
            cells = "  ".join(
                f"{src}→{dst} {acc[0]}f/{acc[1]}B"
                for (src, dst), acc in sorted(self.flow_pairs.items())
            )
            lines.append(f"  flows: {cells}")
        if self.miss_causes:
            causes = ", ".join(
                f"{cause}={count}"
                for cause, count in sorted(self.miss_causes.items(), key=lambda kv: -kv[1])
            )
            lines.append(f"  miss causes: {causes}")
        if self.alerts:
            lines.append("  alerts:")
            for alert in self.alerts:
                where = "" if alert.get("shard") is None else f" shard {alert['shard']}"
                lines.append(
                    f"    [{alert.get('severity', '?')}] {alert.get('kind', '?')}"
                    f"{where} @p{alert.get('period')}: {alert.get('message', '')}"
                )
        elif self.frames:
            lines.append("  alerts: none")
        return "\n".join(lines)


def load_telemetry_jsonl(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield telemetry/alert records from a streaming JSONL file.

    Malformed or truncated lines (a writer mid-append, a killed run) are
    skipped, matching the robustness contract of ``load_obs_jsonl``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                yield record


def run_live(
    path: Union[str, Path],
    refresh_s: float = 1.0,
    follow: bool = True,
    max_idle_s: float = 5.0,
    out: Optional[IO[str]] = None,
    once: bool = False,
) -> Cockpit:
    """Tail a telemetry JSONL and render the cockpit until the stream goes idle.

    With ``once=True`` the file is read once and rendered once (used by
    tests and CI).  Otherwise the file is followed like ``tail -f``,
    redrawing every ``refresh_s`` seconds, and the loop exits after
    ``max_idle_s`` seconds without a new record (or on Ctrl-C).
    """
    out = out if out is not None else sys.stdout
    cockpit = Cockpit()
    buffer = ""
    idle = 0.0
    clear = "\x1b[2J\x1b[H" if getattr(out, "isatty", lambda: False)() else ""
    with open(path, "r", encoding="utf-8") as fh:
        while True:
            chunk = fh.read()
            progressed = False
            if chunk:
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        cockpit.skipped += 1
                        continue
                    if isinstance(record, dict):
                        cockpit.feed_record(record)
                        progressed = True
            out.write(clear + cockpit.render() + "\n")
            out.flush()
            if once or not follow:
                break
            idle = 0.0 if progressed else idle + refresh_s
            if idle >= max_idle_s:
                break
            try:
                time.sleep(refresh_s)
            except KeyboardInterrupt:
                break
    return cockpit
