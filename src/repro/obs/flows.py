"""Per-link flow matrix: who talks to whom, in frames and bytes.

Two accounting layers, both opt-in via :class:`~repro.obs.ObsConfig`:

- **Logical links** — every ``LiveSwarm.deliver()`` call records the
  directed peer pair ``(src, dst)`` with frame/byte totals split into
  data (segment-carrying) vs control traffic.  The table is bounded:
  when it outgrows ``4 * top_links`` distinct pairs it is compacted to
  the ``top_links`` heaviest talkers (by bytes) and the remainder is
  folded into an aggregate *tail* so totals are conserved while memory
  stays O(top_links).
- **Physical shard pairs** — the loopback delivery tail records
  post-batch wire bytes per ``(src_shard, dst_shard)`` at the exact
  point ``bytes_on_wire`` is charged, so the pair matrix reconciles
  with the physical byte counter by construction.

The matrix also produces incremental shard-pair deltas that ride the
``TelemetryFrame`` body, giving the coordinator's ``HealthEngine`` and
the live cockpit a cross-shard flow view while the run is in flight.

Everything here is deterministic (insertion-ordered dicts, stable
sorts, no RNG, no wall clock) so same-seed virtual runs export
identical matrices — which is what lets ``obs diff`` promise zero
regressions on a same-seed comparison.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["FlowMatrix", "merge_flows"]

# links row layout: [frames, bytes, data_frames, data_bytes]
_FRAMES, _BYTES, _DATA_FRAMES, _DATA_BYTES = range(4)


class FlowMatrix:
    """Bounded directed-link and shard-pair traffic accounting."""

    __slots__ = ("top_links", "links", "tail_links", "tail", "pairs", "_pair_sent")

    def __init__(self, top_links: int = 32) -> None:
        if top_links < 1:
            raise ValueError("top_links must be >= 1")
        self.top_links = top_links
        self.links: Dict[Tuple[int, int], List[int]] = {}
        self.tail_links = 0
        self.tail = [0, 0, 0, 0]
        self.pairs: Dict[Tuple[int, int], List[int]] = {}
        # Shard-pair totals already shipped in a telemetry delta.
        self._pair_sent: Dict[Tuple[int, int], Tuple[int, int]] = {}

    # -- recording (hot path: one dict hit + list adds) ----------------

    def record(self, src: int, dst: int, nbytes: int, data: bool) -> None:
        """Account one logical frame on the directed link ``src -> dst``."""
        row = self.links.get((src, dst))
        if row is None:
            if len(self.links) >= 4 * self.top_links:
                self._compact()
            row = self.links[(src, dst)] = [0, 0, 0, 0]
        row[_FRAMES] += 1
        row[_BYTES] += nbytes
        if data:
            row[_DATA_FRAMES] += 1
            row[_DATA_BYTES] += nbytes

    def record_physical(
        self, src_shard: int, dst_shard: int, nbytes: int, frames: int = 1
    ) -> None:
        """Account post-batch wire bytes on the ``src_shard -> dst_shard`` pair."""
        row = self.pairs.get((src_shard, dst_shard))
        if row is None:
            row = self.pairs[(src_shard, dst_shard)] = [0, 0]
        row[0] += frames
        row[1] += nbytes

    def _compact(self) -> None:
        """Keep the ``top_links`` heaviest links, fold the rest into the tail."""
        ranked = sorted(
            self.links.items(), key=lambda kv: (-kv[1][_BYTES], kv[0])
        )
        self.links = dict(ranked[: self.top_links])
        for _, row in ranked[self.top_links :]:
            self.tail_links += 1
            for i in range(4):
                self.tail[i] += row[i]

    # -- telemetry deltas ----------------------------------------------

    def pair_delta(self) -> List[List[int]]:
        """Shard-pair ``[src, dst, frames, bytes]`` rows changed since last call."""
        out: List[List[int]] = []
        for key, row in self.pairs.items():
            total = (row[0], row[1])
            sent = self._pair_sent.get(key, (0, 0))
            if total != sent:
                out.append([key[0], key[1], total[0] - sent[0], total[1] - sent[1]])
                self._pair_sent[key] = total
        return out

    # -- export ---------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not self.links and not self.pairs

    def to_dict(self) -> Dict[str, Any]:
        ranked = sorted(
            self.links.items(), key=lambda kv: (-kv[1][_BYTES], kv[0])
        )
        # The live table may hold up to 4*top_links between compactions;
        # the export is always bounded at top_links, overflow folded
        # into the (copied) tail so totals stay conserved.
        tail_links = self.tail_links
        tail = list(self.tail)
        for _, row in ranked[self.top_links :]:
            tail_links += 1
            for i in range(4):
                tail[i] += row[i]
        return {
            "top_links": self.top_links,
            "links": [[s, d, *row] for (s, d), row in ranked[: self.top_links]],
            "tail": {
                "links": tail_links,
                "frames": tail[_FRAMES],
                "bytes": tail[_BYTES],
                "data_frames": tail[_DATA_FRAMES],
                "data_bytes": tail[_DATA_BYTES],
            },
            "pairs": [
                [s, d, row[0], row[1]]
                for (s, d), row in sorted(self.pairs.items())
            ],
        }


def merge_flows(parts: Iterable[Optional[Dict[str, Any]]]) -> Optional[Dict[str, Any]]:
    """Merge per-shard flow exports: sum links/pairs, re-bound to top-K."""
    parts = [p for p in parts if p]
    if not parts:
        return None
    top = max(int(p.get("top_links", 32)) for p in parts)
    links: Dict[Tuple[int, int], List[int]] = {}
    tail_links = 0
    tail = [0, 0, 0, 0]
    pairs: Dict[Tuple[int, int], List[int]] = {}
    for part in parts:
        for s, d, *row in part.get("links", ()):
            acc = links.setdefault((s, d), [0, 0, 0, 0])
            for i in range(4):
                acc[i] += row[i]
        t = part.get("tail") or {}
        tail_links += int(t.get("links", 0))
        tail[_FRAMES] += int(t.get("frames", 0))
        tail[_BYTES] += int(t.get("bytes", 0))
        tail[_DATA_FRAMES] += int(t.get("data_frames", 0))
        tail[_DATA_BYTES] += int(t.get("data_bytes", 0))
    for part in parts:
        for s, d, frames, nbytes in part.get("pairs", ()):
            acc = pairs.setdefault((s, d), [0, 0])
            acc[0] += frames
            acc[1] += nbytes
    ranked = sorted(links.items(), key=lambda kv: (-kv[1][_BYTES], kv[0]))
    for _, row in ranked[top:]:
        tail_links += 1
        for i in range(4):
            tail[i] += row[i]
    return {
        "top_links": top,
        "links": [[s, d, *row] for (s, d), row in ranked[:top]],
        "tail": {
            "links": tail_links,
            "frames": tail[_FRAMES],
            "bytes": tail[_BYTES],
            "data_frames": tail[_DATA_FRAMES],
            "data_bytes": tail[_DATA_BYTES],
        },
        "pairs": [
            [s, d, row[0], row[1]] for (s, d), row in sorted(pairs.items())
        ],
    }
