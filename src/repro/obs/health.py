"""Run-level health: SLO budgets, watchdogs, and typed alerts.

The :class:`HealthEngine` folds the per-shard telemetry stream (see
``docs/observability.md`` → *Live telemetry & SLOs*) into run-level
health verdicts while the run is still going:

* **rolling continuity** — per-period ``playing/total`` samples from
  every live shard are closed out once all of them have reported a
  period, giving one run-wide continuity number per period;
* **burn rate** — with an SLO like ``continuity>=0.95`` the error
  budget is ``1 - target``; a period that misses the target burns
  ``(1 - continuity) / budget`` of budget.  Sustained burn above the
  spec's multiplier (``:burn=3x``) for ``confirm`` consecutive periods
  is a breach: the engine records a critical alert, writes a postmortem
  naming the breach, and (when the caller opted in via ``--slo``)
  aborts the run through :class:`SloViolation`;
* **watchdogs** — credit starvation (pending credits stuck non-zero and
  non-decreasing), dilation stretch (AIMD clock dilation approaching
  its ceiling), stalled telemetry (one shard stops reporting while the
  rest advance), and shard death (control channel lost mid-run).

Alerts are plain frozen dataclasses so they serialise into the
telemetry JSONL and the flight recorder without ceremony, and every
alert is emitted at most once per episode so the feed stays readable.
"""

from __future__ import annotations

import dataclasses
import re
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["Alert", "SloSpec", "SloViolation", "HealthEngine", "parse_slo"]


@dataclasses.dataclass(frozen=True)
class Alert:
    """One typed health event, ordered by ``(period, seq)`` of emission."""

    kind: str  # continuity_burn | credit_starvation | dilation_stretch | telemetry_stall | shard_dead
    severity: str  # "warn" | "critical"
    message: str
    shard: Optional[int] = None
    period: Optional[int] = None
    value: float = 0.0
    threshold: float = 0.0
    t: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class SloViolation(RuntimeError):
    """Raised to abort a run early once an ``--slo`` budget is breached.

    Carries the breaching :class:`Alert` and, when available, the obs
    export taken at abort time so the CLI can print the postmortem that
    names the breach.
    """

    def __init__(self, alert: Alert, obs: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(alert.message)
        self.alert = alert
        self.obs = obs


_SLO_HEAD = re.compile(r"^(?P<metric>[a-z_]+)\s*(?P<op>>=)\s*(?P<target>[0-9.]+)$")


@dataclasses.dataclass(frozen=True)
class SloSpec:
    """A parsed ``--slo`` budget, e.g. ``continuity>=0.95:burn=3x``.

    Attributes:
        metric: the governed series; only ``continuity`` is defined today.
        target: the SLO floor (``0 < target <= 1``).
        burn: abort once budget burns at ``burn``× the sustainable rate.
        confirm: consecutive burning periods required before breaching
            (one bad period is noise; two in a row is a trend).
        grace: periods to ignore at run start (startup ramp), or ``None``
            to let the runner pick (a third of the round count).
    """

    metric: str = "continuity"
    target: float = 0.95
    burn: float = 3.0
    confirm: int = 2
    grace: Optional[int] = None

    def __post_init__(self) -> None:
        if self.metric != "continuity":
            raise ValueError(f"unsupported SLO metric {self.metric!r} (only 'continuity')")
        if not 0.0 < self.target <= 1.0:
            raise ValueError(f"SLO target must be in (0, 1], got {self.target!r}")
        if self.burn <= 0:
            raise ValueError(f"SLO burn multiplier must be > 0, got {self.burn!r}")
        if self.confirm < 1:
            raise ValueError(f"SLO confirm must be >= 1, got {self.confirm!r}")

    @property
    def budget(self) -> float:
        """The error budget: tolerable miss fraction per period."""
        return 1.0 - self.target

    @property
    def text(self) -> str:
        parts = [f"{self.metric}>={self.target:g}", f"burn={self.burn:g}x"]
        if self.grace is not None:
            parts.append(f"grace={self.grace}")
        if self.confirm != 2:
            parts.append(f"confirm={self.confirm}")
        return ":".join(parts)

    @classmethod
    def parse(cls, spec: str) -> "SloSpec":
        head, *opts = [p.strip() for p in spec.strip().split(":") if p.strip()]
        match = _SLO_HEAD.match(head.replace(" ", ""))
        if match is None:
            raise ValueError(
                f"bad SLO spec {spec!r}: expected e.g. 'continuity>=0.95[:burn=3x][:grace=5]'"
            )
        kwargs: Dict[str, Any] = {
            "metric": match["metric"],
            "target": float(match["target"]),
        }
        for opt in opts:
            key, _, value = opt.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "burn":
                kwargs["burn"] = float(value.rstrip("xX"))
            elif key == "grace":
                kwargs["grace"] = int(value)
            elif key == "confirm":
                kwargs["confirm"] = int(value)
            else:
                raise ValueError(f"bad SLO option {opt!r} in {spec!r}")
        return cls(**kwargs)


def parse_slo(spec: Optional[str]) -> Optional[SloSpec]:
    """``SloSpec.parse`` that passes ``None`` through (no SLO configured)."""
    return None if spec is None else SloSpec.parse(spec)


class _ShardHealth:
    """Mutable per-shard rollup the engine keeps between frames."""

    __slots__ = (
        "last_period",
        "last_t",
        "continuity",
        "stretch",
        "credit_pending",
        "credit_streak",
        "credit_alerted",
        "stretch_alerted",
        "stall_alerted",
        "partition_alerted",
        "frames",
        "peers_live",
        "miss_causes",
    )

    def __init__(self, window: int) -> None:
        self.last_period = -1
        self.last_t = 0.0
        self.continuity: Deque[Tuple[int, float]] = deque(maxlen=window)
        self.stretch = 1.0
        self.credit_pending = 0.0
        self.credit_streak = 0
        self.credit_alerted = False
        self.stretch_alerted = False
        self.stall_alerted = False
        self.partition_alerted = False
        self.frames = 0
        self.peers_live = 0
        self.miss_causes: Dict[str, int] = {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "last_period": self.last_period,
            "frames": self.frames,
            "peers_live": self.peers_live,
            "stretch": self.stretch,
            "credit_pending": self.credit_pending,
            "continuity": [list(p) for p in self.continuity],
            "miss_causes": dict(self.miss_causes),
        }


class HealthEngine:
    """Folds per-shard telemetry frames into run-level SLO verdicts.

    The engine is transport-agnostic: the cluster coordinator feeds it
    decoded :class:`~repro.runtime.wire.TelemetryFrame` bodies, a
    single-process swarm feeds the same dicts straight from its
    telemetry sink.  ``recorder`` (any obs-recorder duck type) receives
    one flight event per alert and the breach postmortem, so health
    history survives into the merged obs export.
    """

    #: AIMD stretch levels that trip the dilation watchdog (MAX_STRETCH is 16).
    STRETCH_WARN = 4.0
    STRETCH_CRITICAL = 12.0
    #: consecutive frames with stuck, non-decreasing pending credits.
    CREDIT_STREAK = 3
    #: periods a shard may lag the fleet before it counts as stalled.
    STALL_PERIODS = 3

    def __init__(
        self,
        slo: Optional[SloSpec] = None,
        recorder: Any = None,
        window: int = 8,
        grace: Optional[int] = None,
        expected_shards: Optional[int] = None,
    ) -> None:
        self.slo = slo
        self.recorder = recorder
        self.window = max(1, int(window))
        #: With a known fleet size no period closes until every expected
        #: shard has reported at least once (or been declared dead) —
        #: otherwise the first shard to speak would close period 0 alone.
        self.expected_shards = expected_shards
        if grace is None:
            grace = slo.grace if slo is not None and slo.grace is not None else 2
        self.grace = max(0, int(grace))
        self.shards: Dict[int, _ShardHealth] = {}
        self.dead_shards: set = set()
        self.alerts: List[Alert] = []
        self._new_alerts: Deque[Alert] = deque()
        self.breach: Optional[Alert] = None
        #: run-level closed periods: (period, continuity, burn_rate)
        self.continuity: Deque[Tuple[int, float, float]] = deque(maxlen=self.window)
        self._acc: Dict[int, List[float]] = {}
        self._closed_through = -1
        self._burn_streak = 0
        self._last_t = 0.0
        #: frames dropped for lacking a valid integer shard id (torn or
        #: foreign telemetry must not pollute shard 0's series).
        self.rejected_frames = 0
        #: cumulative cross-shard flow matrix folded from per-frame
        #: deltas: ``(src_shard, dst_shard) -> [frames, bytes]``.
        self.flow_pairs: Dict[Tuple[int, int], List[int]] = {}
        #: latest per-shard topology summary (coverage, components).
        self.topo: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------ intake
    def observe_frame(self, body: Dict[str, Any]) -> None:
        """Fold one telemetry frame body (a plain dict) into the rollup.

        Frames without a valid integer ``shard`` id are rejected (counted
        in :attr:`rejected_frames`) rather than coerced onto shard 0 —
        a torn or foreign frame must not pollute another shard's
        continuity series or trip its watchdogs.
        """
        shard = body.get("shard")
        if isinstance(shard, bool) or not isinstance(shard, int) or shard < 0:
            self.rejected_frames += 1
            return
        period = int(body.get("period", 0))
        t = float(body.get("t", 0.0))
        self._last_t = max(self._last_t, t)
        st = self.shards.get(shard)
        if st is None:
            st = self.shards[shard] = _ShardHealth(self.window)
        st.frames += 1
        st.last_period = max(st.last_period, period)
        st.last_t = t
        st.peers_live = int(body.get("peers_live", st.peers_live))

        playing = float(body.get("playing", 0.0))
        total = float(body.get("total", 0.0))
        continuity = float(body.get("continuity", 1.0))
        st.continuity.append((period, continuity))
        acc = self._acc.setdefault(period, [0.0, 0.0])
        acc[0] += playing
        acc[1] += total

        for cause, count in (body.get("miss_causes") or {}).items():
            st.miss_causes[cause] = st.miss_causes.get(cause, 0) + int(count)

        for src, dst, frames, nbytes in body.get("flows") or ():
            acc = self.flow_pairs.setdefault((int(src), int(dst)), [0, 0])
            acc[0] += int(frames)
            acc[1] += int(nbytes)
        topo = body.get("topo")
        if topo:
            self.topo[shard] = dict(topo)
            components = topo.get("components")
            if components and int(components) > 1 and not st.partition_alerted:
                st.partition_alerted = True
                self._emit(
                    Alert(
                        kind="overlay_partition",
                        severity="critical",
                        message=(
                            f"shard {shard} sees {components} overlay "
                            "components (partition)"
                        ),
                        shard=shard,
                        period=period,
                        t=t,
                    )
                )

        gauges = body.get("gauges") or {}
        self._watch_stretch(st, shard, period, float(gauges.get("dilation_stretch", 1.0)))
        self._watch_credits(st, shard, period, float(gauges.get("credit_pending_total", 0.0)))
        self._watch_stalls(period)
        self._close_periods()

    def mark_shard_dead(self, shard: int, reason: str = "control channel lost") -> None:
        """A shard's process/pipe died mid-run: alert once, stop waiting on it."""
        if shard in self.dead_shards:
            return
        self.dead_shards.add(shard)
        st = self.shards.get(shard)
        period = st.last_period if st is not None else None
        self._emit(
            Alert(
                kind="shard_dead",
                severity="critical",
                message=f"shard {shard} presumed dead ({reason})",
                shard=shard,
                period=period,
                t=self._last_t,
            )
        )
        # Periods gated on the dead shard can now close on the survivors.
        self._close_periods()

    # --------------------------------------------------------------- watchdogs
    def _watch_stretch(self, st: _ShardHealth, shard: int, period: int, stretch: float) -> None:
        st.stretch = stretch
        if stretch >= self.STRETCH_WARN and not st.stretch_alerted:
            st.stretch_alerted = True
            severity = "critical" if stretch >= self.STRETCH_CRITICAL else "warn"
            self._emit(
                Alert(
                    kind="dilation_stretch",
                    severity=severity,
                    message=(
                        f"shard {shard} clock dilation stretch {stretch:.1f}x "
                        f"(>= {self.STRETCH_WARN:g}x watchdog)"
                    ),
                    shard=shard,
                    period=period,
                    value=stretch,
                    threshold=self.STRETCH_WARN,
                    t=self._last_t,
                )
            )
        elif stretch < self.STRETCH_WARN:
            st.stretch_alerted = False

    def _watch_credits(self, st: _ShardHealth, shard: int, period: int, pending: float) -> None:
        if pending > 0 and pending >= st.credit_pending:
            st.credit_streak += 1
        else:
            st.credit_streak = 0
            st.credit_alerted = False
        st.credit_pending = pending
        if st.credit_streak >= self.CREDIT_STREAK and not st.credit_alerted:
            st.credit_alerted = True
            self._emit(
                Alert(
                    kind="credit_starvation",
                    severity="warn",
                    message=(
                        f"shard {shard} has {pending:g} credits pending, stuck for "
                        f"{st.credit_streak} reporting periods"
                    ),
                    shard=shard,
                    period=period,
                    value=pending,
                    threshold=float(self.CREDIT_STREAK),
                    t=self._last_t,
                )
            )

    def _watch_stalls(self, period: int) -> None:
        for shard, st in self.shards.items():
            if shard in self.dead_shards:
                continue
            lag = period - st.last_period
            if lag > self.STALL_PERIODS and not st.stall_alerted:
                st.stall_alerted = True
                self._emit(
                    Alert(
                        kind="telemetry_stall",
                        severity="warn",
                        message=(
                            f"shard {shard} telemetry stalled at period {st.last_period} "
                            f"while the fleet reached {period}"
                        ),
                        shard=shard,
                        period=st.last_period,
                        value=float(lag),
                        threshold=float(self.STALL_PERIODS),
                        t=self._last_t,
                    )
                )
            elif lag <= self.STALL_PERIODS:
                st.stall_alerted = False

    # ----------------------------------------------------------- SLO evaluation
    def _live_floor(self) -> Optional[int]:
        """The newest period every live shard has reported, or ``None``."""
        if self.expected_shards is not None:
            heard_of = len(set(self.shards) | self.dead_shards)
            if heard_of < self.expected_shards:
                return None
        floor: Optional[int] = None
        for shard, st in self.shards.items():
            if shard in self.dead_shards:
                continue
            floor = st.last_period if floor is None else min(floor, st.last_period)
        return floor

    def _close_periods(self) -> None:
        floor = self._live_floor()
        if floor is None:
            return
        while self._closed_through < floor:
            period = self._closed_through + 1
            self._closed_through = period
            playing, total = self._acc.pop(period, (0.0, 0.0))
            continuity = (playing / total) if total else 1.0
            self._score_period(period, continuity)

    def _score_period(self, period: int, continuity: float) -> None:
        slo = self.slo
        burn = 0.0
        if slo is not None and continuity < slo.target:
            miss = 1.0 - continuity
            burn = (miss / slo.budget) if slo.budget > 0 else float("inf")
        self.continuity.append((period, continuity, burn))
        if slo is None or period < self.grace:
            return
        if burn >= slo.burn:
            self._burn_streak += 1
        else:
            self._burn_streak = 0
        if self._burn_streak >= slo.confirm and self.breach is None:
            alert = Alert(
                kind="continuity_burn",
                severity="critical",
                message=(
                    f"SLO '{slo.text}' breached: continuity {continuity:.3f} burned the "
                    f"error budget at {burn:.1f}x (>= {slo.burn:g}x) for "
                    f"{self._burn_streak} consecutive periods ending at period {period}"
                ),
                period=period,
                value=burn,
                threshold=slo.burn,
                t=self._last_t,
            )
            self.breach = alert
            self._emit(alert)
            if self.recorder is not None:
                self.recorder.postmortem(f"SLO breach: {alert.message}")

    # ------------------------------------------------------------------ alerts
    def _emit(self, alert: Alert) -> None:
        self.alerts.append(alert)
        self._new_alerts.append(alert)
        if self.recorder is not None:
            self.recorder.flight(
                "alert",
                kind=alert.kind,
                severity=alert.severity,
                alert_shard=alert.shard,
                period=alert.period,
                message=alert.message,
            )

    def drain_alerts(self) -> List[Alert]:
        """Alerts emitted since the last drain (for streaming writers)."""
        out = list(self._new_alerts)
        self._new_alerts.clear()
        return out

    # ----------------------------------------------------------------- export
    def snapshot(self) -> Dict[str, Any]:
        """A plain JSON-friendly view for ``RuntimeResult.cluster['health']``."""
        return {
            "slo": self.slo.text if self.slo is not None else None,
            "grace": self.grace,
            "alerts": [a.to_dict() for a in self.alerts],
            "breach": self.breach.to_dict() if self.breach is not None else None,
            "continuity": [list(p) for p in self.continuity],
            "closed_through": self._closed_through,
            "rejected_frames": self.rejected_frames,
            "dead_shards": sorted(self.dead_shards),
            "flows": [
                [src, dst, acc[0], acc[1]]
                for (src, dst), acc in sorted(self.flow_pairs.items())
            ],
            "topo": {shard: dict(t) for shard, t in sorted(self.topo.items())},
            "shards": {shard: st.to_dict() for shard, st in sorted(self.shards.items())},
        }
