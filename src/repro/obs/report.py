"""Export surfaces for the obs plane: JSONL files and terminal reports.

``--metrics-out`` writes one run's obs export as a line-oriented JSONL
stream (one typed record per line — ``meta``, ``metric``, ``span``,
``flight``, ``flows``, ``topo``, ``socket_link``, ``postmortem``,
``summary``) that tails cleanly and loads back with
:func:`load_obs_jsonl`; ``continustreaming-experiments obs --in
run.jsonl`` renders it with :func:`render_report`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import summarize_traces

__all__ = [
    "write_obs_jsonl",
    "load_obs_jsonl",
    "render_report",
    "format_postmortems",
]

_SPARK = "▁▂▃▄▅▆▇█"


def write_obs_jsonl(path: Union[str, Path], obs: Dict[str, Any]) -> Path:
    """Write an obs export dict (``RuntimeResult.obs``) as typed JSONL."""
    path = Path(path)
    metrics = obs.get("metrics", {})
    with path.open("w", encoding="utf-8") as fh:
        meta = {
            "type": "meta",
            "shard": obs.get("shard"),
            "shards": obs.get("shards"),
            "spans_dropped": obs.get("spans_dropped", 0),
        }
        fh.write(json.dumps(meta, sort_keys=True) + "\n")
        for name, points in sorted(metrics.get("series", {}).items()):
            for period, value in points:
                fh.write(
                    json.dumps(
                        {"type": "metric", "name": name, "period": period, "value": value},
                        sort_keys=True,
                    )
                    + "\n"
                )
        for span in obs.get("spans", ()):
            fh.write(json.dumps({"type": "span", **span}, sort_keys=True) + "\n")
        for event in obs.get("flight", ()):
            fh.write(json.dumps({"type": "flight", **event}, sort_keys=True) + "\n")
        if obs.get("flows"):
            fh.write(json.dumps({"type": "flows", **obs["flows"]}, sort_keys=True) + "\n")
        if obs.get("topo"):
            fh.write(json.dumps({"type": "topo", **obs["topo"]}, sort_keys=True) + "\n")
        for row in obs.get("socket_links", ()):
            fh.write(json.dumps({"type": "socket_link", **row}, sort_keys=True) + "\n")
        for dump in obs.get("postmortems", ()):
            fh.write(json.dumps({"type": "postmortem", **dump}, sort_keys=True) + "\n")
        summary = {
            "type": "summary",
            "counters": metrics.get("counters", {}),
            "gauges": metrics.get("gauges", {}),
            "histograms": metrics.get("histograms", {}),
            "traces": obs.get("traces", {}),
        }
        fh.write(json.dumps(summary, sort_keys=True) + "\n")
    return path


def load_obs_jsonl(path: Union[str, Path]) -> Dict[str, Any]:
    """Reconstruct an obs export dict from a :func:`write_obs_jsonl` file.

    Robust by contract: empty files, truncated trailing lines (a writer
    killed mid-append) and malformed records are *skipped*, not raised —
    a partial export from a dead run must still render a report.  The
    skip count surfaces as ``skipped_lines`` and in the report footer.
    """
    obs: Dict[str, Any] = {
        "shard": None,
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}, "series": {}},
        "spans": [],
        "flight": [],
        "postmortems": [],
        "spans_dropped": 0,
        "traces": {},
        "skipped_lines": 0,
    }
    series: Dict[str, List[List[float]]] = {}
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                obs["skipped_lines"] += 1
                continue
            if not isinstance(record, dict):
                obs["skipped_lines"] += 1
                continue
            kind = record.pop("type", None)
            if kind == "meta":
                obs["shard"] = record.get("shard")
                if record.get("shards") is not None:
                    obs["shards"] = record["shards"]
                obs["spans_dropped"] = record.get("spans_dropped", 0)
            elif kind == "metric":
                if "name" not in record or "period" not in record or "value" not in record:
                    obs["skipped_lines"] += 1
                    continue
                series.setdefault(record["name"], []).append(
                    [record["period"], record["value"]]
                )
            elif kind == "span":
                obs["spans"].append(record)
            elif kind == "flight":
                obs["flight"].append(record)
            elif kind == "flows":
                obs["flows"] = record
            elif kind == "topo":
                obs["topo"] = record
            elif kind == "socket_link":
                obs.setdefault("socket_links", []).append(record)
            elif kind == "postmortem":
                obs["postmortems"].append(record)
            elif kind == "summary":
                obs["metrics"]["counters"] = record.get("counters", {})
                obs["metrics"]["gauges"] = record.get("gauges", {})
                obs["metrics"]["histograms"] = record.get("histograms", {})
                obs["traces"] = record.get("traces", {})
            else:
                obs["skipped_lines"] += 1
    obs["metrics"]["series"] = series
    if not obs["traces"] and obs["spans"]:
        obs["traces"] = summarize_traces(obs["spans"])
    return obs


def _sparkline(values: List[float], width: int = 32) -> str:
    if not values:
        return ""
    if len(values) > width:
        # Downsample by striding so the line still spans the whole run.
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[0] * len(values)
    scale = (len(_SPARK) - 1) / (hi - lo)
    return "".join(_SPARK[int((v - lo) * scale)] for v in values)


def render_report(obs: Dict[str, Any]) -> str:
    """A terminal report: metric sparklines, trace summary, postmortems."""
    lines: List[str] = []
    metrics = obs.get("metrics", {})
    series = metrics.get("series", {})
    if series:
        lines.append("timeseries (per period)")
        width = max(len(name) for name in series)
        for name in sorted(series):
            values = [v for _, v in series[name]]
            if not values:
                continue
            lines.append(
                f"  {name:<{width}}  {_sparkline(values)}  "
                f"last={values[-1]:.4g} min={min(values):.4g} max={max(values):.4g}"
            )
    else:
        lines.append("(no metric series in this export)")
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:.6g}")
    hists = metrics.get("histograms", {})
    if hists:
        lines.append("histograms")
        width = max(len(name) for name in hists)
        for name in sorted(hists):
            h = hists[name]
            mean = h.get("sum", 0.0) / h["count"] if h.get("count") else 0.0
            quantiles = ""
            if "p50" in h:
                quantiles = f" p50={h['p50']:.4g} p95={h.get('p95', 0.0):.4g}"
            lines.append(
                f"  {name:<{width}}  n={h.get('count', 0)} mean={mean:.4g}"
                f"{quantiles} "
                f"min={h.get('min', 0.0):.4g} max={h.get('max', 0.0):.4g}"
            )
    flows = obs.get("flows")
    if flows:
        lines.append(_render_flows(flows))
    topo = obs.get("topo")
    if topo:
        lines.append(_render_topo(topo))
    socket_links = obs.get("socket_links")
    if socket_links:
        lines.append("socket links (per shard pair)")
        for row in socket_links:
            lines.append(
                "  {src}→{dst}  out {fo}f/{bo}B  in {fi}f/{bi}B  "
                "sheds={sheds} resets={resets}{lost}".format(
                    src=row.get("src_shard"),
                    dst=row.get("dst_shard"),
                    fo=row.get("frames_out", 0),
                    bo=row.get("bytes_out", 0),
                    fi=row.get("frames_in", 0),
                    bi=row.get("bytes_in", 0),
                    sheds=row.get("sheds", 0),
                    resets=row.get("disconnects", 0),
                    lost="  LOST" if row.get("lost") else "",
                )
            )
    traces = obs.get("traces") or {}
    if traces.get("sampled"):
        lines.append(
            "traces: {sampled} sampled journeys — {played} played, {missed} missed, "
            "{open} open, {cross_shard} cross-shard".format(**traces)
        )
        if traces.get("miss_causes"):
            causes = ", ".join(f"{k}={v}" for k, v in sorted(traces["miss_causes"].items()))
            lines.append(f"  miss causes: {causes}")
        rtd = traces.get("request_to_deliver_s")
        if rtd:
            p50 = f"p50={rtd['p50']:.3f}s " if "p50" in rtd else ""
            lines.append(
                f"  request→deliver: mean={rtd['mean']:.3f}s {p50}"
                f"p95={rtd['p95']:.3f}s max={rtd['max']:.3f}s"
            )
    dropped = obs.get("spans_dropped", 0)
    if dropped:
        lines.append(f"  ({dropped} spans dropped at the per-process cap)")
    skipped = obs.get("skipped_lines", 0)
    if skipped:
        lines.append(f"  ({skipped} malformed/unknown JSONL lines skipped)")
    pm = format_postmortems(obs)
    if pm:
        lines.append(pm)
    if not lines:
        lines.append("(empty obs export)")
    return "\n".join(lines)


def _render_flows(flows: Dict[str, Any], top: int = 8) -> str:
    """The flow-matrix section: shard pairs, top talkers, the tail."""
    lines = ["flow matrix"]
    pairs = flows.get("pairs") or []
    if pairs:
        total = sum(row[3] for row in pairs)
        lines.append(f"  shard pairs ({len(pairs)}, {total} wire bytes total)")
        for src, dst, frames, nbytes in pairs:
            lines.append(f"    shard {src}→{dst}  {frames}f  {nbytes}B")
    links = flows.get("links") or []
    if links:
        lines.append(f"  top talkers (of {len(links)} tracked links)")
        for src, dst, frames, nbytes, data_frames, data_bytes in links[:top]:
            lines.append(
                f"    {src}→{dst}  {frames}f/{nbytes}B"
                f"  (data {data_frames}f/{data_bytes}B)"
            )
    tail = flows.get("tail") or {}
    if tail.get("links"):
        lines.append(
            "  tail: {links} more links, {frames}f/{bytes}B".format(**tail)
        )
    return "\n".join(lines)


def _render_topo(topo: Dict[str, Any]) -> str:
    """The overlay-topology section of the report."""
    lines = ["overlay topology (last snapshot, period {})".format(topo.get("period"))]
    lines.append(
        "  gossip coverage: {:.1%} ({} of {} partner edges fresh within "
        "{} periods)".format(
            topo.get("coverage", 0.0),
            topo.get("covered_pairs", 0),
            topo.get("partner_pairs", 0),
            topo.get("coverage_periods", 0),
        )
    )
    components = topo.get("components", 0)
    partition = "  ⚠ OVERLAY PARTITIONED" if components and components > 1 else ""
    lines.append(
        f"  components: {components} over {topo.get('component_nodes', 0)} "
        f"live nodes{partition}"
    )
    lines.append(
        "  partner graph: {} nodes, {} edges, out-degree mean={:.2f} max={}".format(
            topo.get("nodes", 0),
            topo.get("edges", 0),
            topo.get("out_degree_mean", 0.0),
            topo.get("out_degree_max", 0),
        )
    )
    lines.append(
        "  ring fingers: {:.1%} alive ({} of {})".format(
            topo.get("finger_health", 0.0),
            topo.get("finger_alive", 0),
            topo.get("finger_total", 0),
        )
    )
    return "\n".join(lines)


def format_postmortems(obs: Optional[Dict[str, Any]], tail: int = 12) -> str:
    """The flight-recorder dumps, rendered for a job log (empty if none)."""
    if not obs or not obs.get("postmortems"):
        return ""
    lines: List[str] = []
    for dump in obs["postmortems"]:
        shard = dump.get("shard")
        where = f" [shard {shard}]" if shard is not None else ""
        lines.append(f"postmortem{where} t={dump.get('t', 0.0):.2f}: {dump.get('reason')}")
        events = dump.get("events", [])
        for event in events[-tail:]:
            extras = {
                k: v for k, v in event.items() if k not in ("event", "t", "shard")
            }
            detail = " ".join(f"{k}={v}" for k, v in sorted(extras.items()))
            lines.append(f"    t={event.get('t', 0.0):>8.2f}  {event.get('event'):<18} {detail}".rstrip())
        if len(events) > tail:
            lines.append(f"    (… {len(events) - tail} earlier events in the ring)")
    return "\n".join(lines)
