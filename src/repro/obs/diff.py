"""Compare two obs JSONL exports: baseline vs candidate.

``continustreaming-experiments obs diff --baseline a.jsonl --in b.jsonl``
loads both exports (:func:`~repro.obs.report.load_obs_jsonl`), runs
:func:`diff_obs` and prints :func:`render_diff`; ``--verdict-out``
additionally writes the machine-readable verdict dict as JSON so CI can
gate (or warn) on it without parsing terminal output.

What counts as a **regression** (fails ``verdict["ok"]``):

- trace p50/p95 request→deliver latency worsening beyond the relative
  tolerance (default 10%, with a small absolute floor so microsecond
  jitter on near-zero latencies never trips it);
- the played fraction of sampled journeys dropping by more than 2pp;
- new postmortems in the candidate when the baseline had none.

Counter movements on *bad* counters (drops, sheds, misses, resets …)
beyond tolerance are **warnings**; everything else — series movers,
counter ratios, flow-matrix churn — is reported as informational
change.  Two same-seed virtual-clock runs export identical files, so a
same-seed diff reports zero regressions, zero warnings and zero changes
by construction (this is pinned in the tests).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["diff_obs", "render_diff"]

#: Substrings marking counters where "more" means "worse".
_BAD_COUNTER_MARKS = (
    "dropped",
    "shed",
    "miss",
    "rejected",
    "misrouted",
    "lost",
    "reset",
    "disconnect",
    "stall",
)

#: Ignore latency shifts below this many seconds even when the relative
#: tolerance trips — sub-millisecond jitter is not a regression.
_ABS_LATENCY_FLOOR_S = 1e-3


def _is_bad_counter(name: str) -> bool:
    return any(mark in name for mark in _BAD_COUNTER_MARKS)


def _ratio(base: float, cand: float) -> Optional[float]:
    if base == 0:
        return None if cand == 0 else float("inf")
    return cand / base


def _series_stats(points: Iterable[Iterable[float]]) -> Optional[Tuple[float, float]]:
    values = [v for _, v in points]
    if not values:
        return None
    return (sum(values) / len(values), values[-1])


def _flow_links(obs: Dict[str, Any]) -> Dict[Tuple[int, int], int]:
    flows = obs.get("flows") or {}
    return {(s, d): nbytes for s, d, _f, nbytes, *_rest in flows.get("links", ())}


def _flow_pairs(obs: Dict[str, Any]) -> Dict[Tuple[int, int], int]:
    flows = obs.get("flows") or {}
    return {(s, d): nbytes for s, d, _f, nbytes in flows.get("pairs", ())}


def diff_obs(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    *,
    p95_tolerance: float = 0.10,
    counter_tolerance: float = 0.05,
    series_top: int = 8,
) -> Dict[str, Any]:
    """Diff two obs export dicts into a verdict dict (see module doc)."""
    regressions: List[Dict[str, Any]] = []
    warnings: List[Dict[str, Any]] = []
    changes: List[Dict[str, Any]] = []

    # ---------------------------------------------------------- counters
    base_counters = (baseline.get("metrics") or {}).get("counters", {})
    cand_counters = (candidate.get("metrics") or {}).get("counters", {})
    for name in sorted(set(base_counters) | set(cand_counters)):
        b = float(base_counters.get(name, 0.0))
        c = float(cand_counters.get(name, 0.0))
        if b == c:
            continue
        ratio = _ratio(b, c)
        entry = {"kind": "counter", "name": name, "baseline": b, "candidate": c, "ratio": ratio}
        moved = ratio is None or ratio == float("inf") or abs(ratio - 1.0) > counter_tolerance
        if moved and _is_bad_counter(name) and c > b and c - b > 2:
            warnings.append(entry)
        elif moved:
            changes.append(entry)

    # ------------------------------------------------------------ traces
    base_traces = baseline.get("traces") or {}
    cand_traces = candidate.get("traces") or {}
    trace_report: Dict[str, Any] = {}
    if base_traces.get("sampled") and cand_traces.get("sampled"):
        b_frac = base_traces.get("played", 0) / base_traces["sampled"]
        c_frac = cand_traces.get("played", 0) / cand_traces["sampled"]
        trace_report["played_fraction"] = {"baseline": b_frac, "candidate": c_frac}
        if b_frac - c_frac > 0.02:
            regressions.append(
                {
                    "kind": "trace_played_fraction",
                    "baseline": b_frac,
                    "candidate": c_frac,
                }
            )
        b_rtd = base_traces.get("request_to_deliver_s") or {}
        c_rtd = cand_traces.get("request_to_deliver_s") or {}
        for q in ("p50", "p95"):
            if q in b_rtd and q in c_rtd:
                trace_report[f"rtd_{q}"] = {"baseline": b_rtd[q], "candidate": c_rtd[q]}
                worse = c_rtd[q] - b_rtd[q]
                if (
                    worse > _ABS_LATENCY_FLOOR_S
                    and b_rtd[q] > 0
                    and worse / b_rtd[q] > p95_tolerance
                ):
                    regressions.append(
                        {
                            "kind": f"trace_{q}",
                            "baseline": b_rtd[q],
                            "candidate": c_rtd[q],
                        }
                    )

    # ------------------------------------------------------- postmortems
    base_pm = len(baseline.get("postmortems") or ())
    cand_pm = len(candidate.get("postmortems") or ())
    if cand_pm > base_pm:
        regressions.append(
            {"kind": "postmortems", "baseline": base_pm, "candidate": cand_pm}
        )

    # ------------------------------------------------------------ series
    base_series = (baseline.get("metrics") or {}).get("series", {})
    cand_series = (candidate.get("metrics") or {}).get("series", {})
    movers: List[Dict[str, Any]] = []
    for name in sorted(set(base_series) | set(cand_series)):
        b = _series_stats(base_series.get(name, ()))
        c = _series_stats(cand_series.get(name, ()))
        if b is None or c is None:
            if b is not c:
                movers.append(
                    {"name": name, "only_in": "candidate" if b is None else "baseline"}
                )
            continue
        if b == c:
            continue
        denom = abs(b[0]) if b[0] else 1.0
        movers.append(
            {
                "name": name,
                "baseline_mean": b[0],
                "candidate_mean": c[0],
                "baseline_last": b[1],
                "candidate_last": c[1],
                "rel_mean_shift": (c[0] - b[0]) / denom,
            }
        )
    movers.sort(key=lambda m: -abs(m.get("rel_mean_shift", 1.0)))
    movers = movers[:series_top]

    # ------------------------------------------------------------- flows
    flow_report: Dict[str, Any] = {}
    b_links, c_links = _flow_links(baseline), _flow_links(candidate)
    if b_links or c_links:
        union = set(b_links) | set(c_links)
        common = set(b_links) & set(c_links)
        flow_report["link_churn"] = 1.0 - (len(common) / len(union) if union else 1.0)
        flow_report["links"] = {"baseline": len(b_links), "candidate": len(c_links)}
    b_pairs, c_pairs = _flow_pairs(baseline), _flow_pairs(candidate)
    if b_pairs or c_pairs:
        pair_rows = []
        for key in sorted(set(b_pairs) | set(c_pairs)):
            b = b_pairs.get(key, 0)
            c = c_pairs.get(key, 0)
            pair_rows.append(
                {
                    "pair": list(key),
                    "baseline_bytes": b,
                    "candidate_bytes": c,
                    "ratio": _ratio(float(b), float(c)),
                }
            )
        flow_report["pairs"] = pair_rows
        b_total = sum(b_pairs.values())
        c_total = sum(c_pairs.values())
        flow_report["total_bytes"] = {
            "baseline": b_total,
            "candidate": c_total,
            "ratio": _ratio(float(b_total), float(c_total)),
        }

    return {
        "ok": not regressions,
        "regressions": regressions,
        "warnings": warnings,
        "changes": changes,
        "series_movers": movers,
        "traces": trace_report,
        "flows": flow_report,
        "tolerances": {
            "p95": p95_tolerance,
            "counter": counter_tolerance,
        },
    }


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_diff(diff: Dict[str, Any]) -> str:
    """Render a :func:`diff_obs` verdict for a terminal / job log."""
    lines: List[str] = []
    verdict = "OK" if diff.get("ok") else "REGRESSIONS"
    lines.append(
        f"obs diff: {verdict} — {len(diff.get('regressions', []))} regressions, "
        f"{len(diff.get('warnings', []))} warnings, "
        f"{len(diff.get('changes', []))} counter changes"
    )
    for label, rows in (("regression", diff.get("regressions", [])),
                        ("warning", diff.get("warnings", []))):
        for row in rows:
            name = row.get("name", row.get("kind"))
            lines.append(
                f"  {label}: {name}  baseline={_fmt(row.get('baseline'))} "
                f"candidate={_fmt(row.get('candidate'))}"
            )
    traces = diff.get("traces") or {}
    for key in ("rtd_p50", "rtd_p95", "played_fraction"):
        if key in traces:
            row = traces[key]
            lines.append(
                f"  traces.{key}: {_fmt(row['baseline'])} → {_fmt(row['candidate'])}"
            )
    movers = diff.get("series_movers") or []
    if movers:
        lines.append("  top series movers (by relative mean shift)")
        for m in movers:
            if "only_in" in m:
                lines.append(f"    {m['name']}: only in {m['only_in']}")
            else:
                lines.append(
                    "    {name}: mean {b} → {c} ({shift:+.1%})".format(
                        name=m["name"],
                        b=_fmt(m["baseline_mean"]),
                        c=_fmt(m["candidate_mean"]),
                        shift=m["rel_mean_shift"],
                    )
                )
    flows = diff.get("flows") or {}
    if "link_churn" in flows:
        lines.append(f"  flow link churn: {flows['link_churn']:.1%}")
    total = flows.get("total_bytes")
    if total:
        lines.append(
            "  wire bytes: {b} → {c}".format(
                b=_fmt(total["baseline"]), c=_fmt(total["candidate"])
            )
        )
    if len(lines) == 1:
        lines.append("  (exports are identical on every compared axis)")
    return "\n".join(lines)
