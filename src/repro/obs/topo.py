"""Overlay topology introspection: partner graph, coverage, partitions.

:class:`TopologyObserver` takes a periodic snapshot of the overlay as a
hosted swarm actually sees it:

- **Partner graph** — directed adjacency from every hosted live peer to
  its live gossip partners, with the out-degree distribution.
- **Gossip coverage** — the fraction of (peer, partner) edges on which
  the partner's *newest* buffer map arrived within the last ``k``
  periods (tracked via the per-partner map sequence numbers the delta
  gossip chain already maintains).  A coverage collapse means buffer
  maps stopped disseminating — the precondition for scheduling decay
  under churn that the paper's gossip argument rests on.
- **Ring-finger health** — the fraction of DHT finger entries that
  still point at live peers.
- **Partition detection** — the weakly-connected-component count of
  the local overlay view (every live node and its partner edges); any
  value above 1 means the overlay has split.

Snapshots are cheap (O(nodes + edges), no RNG, no wall clock) and ride
the normal ``RuntimeResult.obs`` export; :func:`merge_topo` unions the
per-shard partner graphs into the true cross-shard graph and recomputes
degrees and components over the union.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["TopologyObserver", "merge_topo"]


def _components(adjacency: Dict[int, Iterable[int]]) -> Tuple[int, int]:
    """Weakly-connected components of a directed graph: (count, nodes)."""
    undirected: Dict[int, set] = {}
    for node, nbrs in adjacency.items():
        mine = undirected.setdefault(node, set())
        for nbr in nbrs:
            mine.add(nbr)
            undirected.setdefault(nbr, set()).add(node)
    seen: set = set()
    count = 0
    for start in undirected:
        if start in seen:
            continue
        count += 1
        stack = [start]
        seen.add(start)
        while stack:
            for nbr in undirected[stack.pop()]:
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
    return count, len(undirected)


def _degree_stats(adjacency: Dict[int, List[int]]) -> Dict[str, Any]:
    """Out/in degree distribution of a directed adjacency."""
    out_hist: Dict[int, int] = {}
    in_deg: Dict[int, int] = {}
    for node, nbrs in adjacency.items():
        out_hist[len(nbrs)] = out_hist.get(len(nbrs), 0) + 1
        in_deg.setdefault(node, 0)
        for nbr in nbrs:
            in_deg[nbr] = in_deg.get(nbr, 0) + 1
    in_hist: Dict[int, int] = {}
    for deg in in_deg.values():
        in_hist[deg] = in_hist.get(deg, 0) + 1
    n = len(adjacency)
    edges = sum(len(nbrs) for nbrs in adjacency.values())
    return {
        "nodes": n,
        "edges": edges,
        "out_degree_mean": edges / n if n else 0.0,
        "out_degree_max": max((len(v) for v in adjacency.values()), default=0),
        "out_degree_hist": sorted(out_hist.items()),
        "in_degree_hist": sorted(in_hist.items()),
    }


class TopologyObserver:
    """Periodic overlay snapshots for one (shard of a) live swarm."""

    __slots__ = ("coverage_periods", "last", "_map_seen")

    def __init__(self, coverage_periods: int = 3) -> None:
        if coverage_periods < 1:
            raise ValueError("coverage_periods must be >= 1")
        self.coverage_periods = coverage_periods
        self.last: Optional[Dict[str, Any]] = None
        # (peer, partner) -> (last map seq seen, period it changed)
        self._map_seen: Dict[Tuple[int, int], Tuple[Optional[int], int]] = {}

    def observe(self, swarm: Any, period: int) -> Dict[str, Any]:
        """Snapshot the overlay as ``swarm``'s hosted peers see it now."""
        adjacency: Dict[int, List[int]] = {}
        covered = 0
        edges = 0
        finger_alive = 0
        finger_total = 0
        map_seen: Dict[Tuple[int, int], Tuple[Optional[int], int]] = {}
        k = self.coverage_periods
        for pid, peer in swarm.peers.items():
            node = peer.node
            if not node.alive:
                continue
            partners = sorted(n for n in node.neighbors if swarm.is_alive(n))
            adjacency[pid] = partners
            seqs = peer._neighbor_map_seq
            for partner in partners:
                edges += 1
                seq = seqs.get(partner)
                prev = self._map_seen.get((pid, partner))
                if seq is None:
                    # No map from this partner yet: the edge is dark.
                    map_seen[(pid, partner)] = (None, period)
                    continue
                if prev is None or prev[0] != seq:
                    prev = (seq, period)
                map_seen[(pid, partner)] = prev
                if period - prev[1] < k:
                    covered += 1
            table = getattr(node, "peer_table", None)
            if table is not None:
                for fid in table.dht_peer_ids():
                    finger_total += 1
                    if swarm.is_alive(fid):
                        finger_alive += 1
        self._map_seen = map_seen

        # Partition detection over the *local view* of the full overlay
        # (each process replicates the ring, so this is global within
        # one run; the merged export recomputes over the true union of
        # hosted partner edges instead).
        view = {
            nid: [n for n in node.neighbors if swarm.is_alive(n)]
            for nid, node in swarm.manager.nodes.items()
            if node.alive
        }
        components, component_nodes = _components(view)

        snap: Dict[str, Any] = {
            "period": period,
            "coverage_periods": k,
            "adjacency": [[pid, nbrs] for pid, nbrs in sorted(adjacency.items())],
            "partner_pairs": edges,
            "covered_pairs": covered,
            "coverage": covered / edges if edges else 1.0,
            "components": components,
            "component_nodes": component_nodes,
            "finger_alive": finger_alive,
            "finger_total": finger_total,
            "finger_health": finger_alive / finger_total if finger_total else 1.0,
        }
        snap.update(_degree_stats(adjacency))
        self.last = snap
        return snap

    def telemetry(self) -> Optional[Dict[str, Any]]:
        """Compact per-period summary for the ``TelemetryFrame`` body."""
        if self.last is None:
            return None
        s = self.last
        return {
            "coverage": round(s["coverage"], 4),
            "components": s["components"],
            "finger_health": round(s["finger_health"], 4),
            "partner_pairs": s["partner_pairs"],
        }

    def to_dict(self) -> Optional[Dict[str, Any]]:
        return self.last


def merge_topo(parts: Iterable[Optional[Dict[str, Any]]]) -> Optional[Dict[str, Any]]:
    """Union per-shard snapshots into one cross-shard topology view."""
    parts = [p for p in parts if p]
    if not parts:
        return None
    adjacency: Dict[int, List[int]] = {}
    covered = 0
    edges = 0
    finger_alive = 0
    finger_total = 0
    for part in parts:
        for pid, nbrs in part.get("adjacency", ()):
            adjacency[int(pid)] = [int(n) for n in nbrs]
        covered += int(part.get("covered_pairs", 0))
        edges += int(part.get("partner_pairs", 0))
        finger_alive += int(part.get("finger_alive", 0))
        finger_total += int(part.get("finger_total", 0))
    components, component_nodes = _components(adjacency)
    merged: Dict[str, Any] = {
        "period": max(int(p.get("period", 0)) for p in parts),
        "coverage_periods": max(int(p.get("coverage_periods", 1)) for p in parts),
        "shards_merged": len(parts),
        "adjacency": [[pid, nbrs] for pid, nbrs in sorted(adjacency.items())],
        "partner_pairs": edges,
        "covered_pairs": covered,
        "coverage": covered / edges if edges else 1.0,
        "components": components,
        "component_nodes": component_nodes,
        "finger_alive": finger_alive,
        "finger_total": finger_total,
        "finger_health": finger_alive / finger_total if finger_total else 1.0,
    }
    merged.update(_degree_stats(adjacency))
    return merged
