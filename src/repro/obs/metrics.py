"""The metrics registry: counters, gauges, histograms, per-period series.

A :class:`MetricsRegistry` is the numeric half of the observability plane
(``docs/observability.md``).  Instruments are created lazily on first
touch, so call sites never pre-declare anything:

* **counters** — monotone totals (``inc``);
* **gauges** — last-written level readings (``set_gauge``);
* **histograms** — streaming min/max/sum/count summaries (``observe``),
  with a per-period window that :meth:`snapshot` folds into the series
  and resets;
* **series** — per-period ring buffers ``(period, value)`` appended by
  :meth:`snapshot`: each counter and gauge is sampled once per period,
  each histogram contributes ``<name>_mean`` / ``<name>_max`` points for
  the observations made *during* that period.

Everything exports to plain JSON-friendly dicts (:meth:`to_dict`) so the
registry can cross process boundaries inside a ``ShardResult`` and merge
at the coordinator (:func:`merge_metrics` / :func:`merge_obs`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.obs.flows import merge_flows
from repro.obs.topo import merge_topo

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "merge_metrics",
    "merge_obs",
    "summarize_traces",
]


class Histogram:
    """A streaming summary: count/sum/min/max/p50/p95, plus a period window.

    Percentiles come from a deterministic decimating reservoir: every
    ``_stride``-th observation is retained; when the reservoir fills to
    ``RESERVOIR`` samples, every other retained sample is dropped and the
    stride doubles.  No RNG is involved, so same-seed runs produce
    identical percentile estimates, and memory stays O(RESERVOIR) no
    matter how many observations arrive.
    """

    RESERVOIR = 512

    __slots__ = (
        "count",
        "total",
        "min",
        "max",
        "_win_count",
        "_win_total",
        "_win_max",
        "_samples",
        "_stride",
        "_tick",
    )

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._win_count = 0
        self._win_total = 0.0
        self._win_max = float("-inf")
        self._samples: List[float] = []
        self._stride = 1
        self._tick = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._win_count += 1
        self._win_total += value
        if value > self._win_max:
            self._win_max = value
        if self._tick % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) >= self.RESERVOIR:
                del self._samples[::2]
                self._stride *= 2
        self._tick += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the retained reservoir."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    def drain_window(self) -> Optional[Tuple[float, float]]:
        """``(mean, max)`` of the current period's observations, then reset."""
        if not self._win_count:
            return None
        out = (self._win_total / self._win_count, self._win_max)
        self._win_count = 0
        self._win_total = 0.0
        self._win_max = float("-inf")
        return out

    def to_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
        }


class MetricsRegistry:
    """Lazily created counters/gauges/histograms with ring-buffer series."""

    def __init__(self, window: int = 512) -> None:
        self.window = max(1, int(window))
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, Deque[Tuple[int, float]]] = {}

    # ------------------------------------------------------------ instruments
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -------------------------------------------------------------- snapshots
    def _append(self, name: str, period: int, value: float) -> None:
        ring = self.series.get(name)
        if ring is None:
            ring = self.series[name] = deque(maxlen=self.window)
        ring.append((period, value))

    def snapshot(self, period: int) -> None:
        """Fold the current instrument values into the per-period series."""
        for name, value in self.counters.items():
            self._append(name, period, value)
        for name, value in self.gauges.items():
            self._append(name, period, value)
        for name, hist in self.histograms.items():
            window = hist.drain_window()
            if window is not None:
                mean, peak = window
                self._append(f"{name}_mean", period, mean)
                self._append(f"{name}_max", period, peak)

    # ----------------------------------------------------------------- export
    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: h.to_dict() for name, h in self.histograms.items()},
            "series": {name: [list(point) for point in ring] for name, ring in self.series.items()},
        }


def merge_metrics(parts: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge :meth:`MetricsRegistry.to_dict` exports from several shards.

    Counters and gauges sum (gauges here are swarm-wide totals like inbox
    depth, so addition is the cross-shard meaning); histograms combine
    their count/sum and take the min/max envelope; series sum values at
    equal periods, so a two-shard ``messages_sent`` curve reads as the
    cluster total.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    hists: Dict[str, Dict[str, float]] = {}
    series: Dict[str, Dict[int, float]] = {}
    for part in parts:
        if not part:
            continue
        for name, value in part.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, value in part.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, h in part.get("histograms", {}).items():
            agg = hists.setdefault(name, {"count": 0, "sum": 0.0, "min": float("inf"), "max": float("-inf")})
            if h.get("count"):
                agg["count"] += h["count"]
                agg["sum"] += h["sum"]
                agg["min"] = min(agg["min"], h["min"])
                agg["max"] = max(agg["max"], h["max"])
                # Percentiles merge as count-weighted averages — an
                # approximation (exact merging needs the raw samples),
                # good enough for the report/diff use they feed.
                for q in ("p50", "p95"):
                    if q in h:
                        agg[f"_{q}_weighted"] = (
                            agg.get(f"_{q}_weighted", 0.0) + h[q] * h["count"]
                        )
        for name, points in part.get("series", {}).items():
            curve = series.setdefault(name, {})
            for period, value in points:
                curve[period] = curve.get(period, 0.0) + value
    for agg in hists.values():
        if not agg["count"]:
            agg["min"] = 0.0
            agg["max"] = 0.0
        for q in ("p50", "p95"):
            weighted = agg.pop(f"_{q}_weighted", None)
            if weighted is not None and agg["count"]:
                agg[q] = weighted / agg["count"]
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": hists,
        "series": {
            name: [[p, v] for p, v in sorted(curve.items())] for name, curve in series.items()
        },
    }


def summarize_traces(spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Roll JSONL trace spans up into journey outcomes and hop latencies.

    Groups spans by trace id and classifies each sampled journey as
    ``played`` / ``missed`` (with the miss-cause histogram from the
    requester's attribution) / ``open`` (never resolved before the run
    ended).  ``request_to_deliver_s`` summarises the request→deliver
    latency over journeys that completed, and ``cross_shard`` counts
    journeys whose spans touched more than one shard.
    """
    journeys: Dict[int, List[Dict[str, Any]]] = {}
    for span in spans:
        journeys.setdefault(span["trace"], []).append(span)

    played = missed = opened = cross = 0
    causes: Dict[str, int] = {}
    latencies: List[float] = []
    for events in journeys.values():
        events.sort(key=lambda s: (s.get("t", 0.0), s.get("seq", 0)))
        kinds = {s["event"] for s in events}
        shards = {s.get("shard") for s in events if s.get("shard") is not None}
        if len(shards) > 1:
            cross += 1
        if "play" in kinds:
            played += 1
        elif "miss" in kinds:
            missed += 1
            for s in events:
                if s["event"] == "miss":
                    cause = s.get("cause", "unknown")
                    causes[cause] = causes.get(cause, 0) + 1
        else:
            opened += 1
        t_req = next((s["t"] for s in events if s["event"] == "request"), None)
        t_del = next((s["t"] for s in events if s["event"] == "deliver"), None)
        if t_req is not None and t_del is not None and t_del >= t_req:
            latencies.append(t_del - t_req)

    summary: Dict[str, Any] = {
        "sampled": len(journeys),
        "played": played,
        "missed": missed,
        "open": opened,
        "cross_shard": cross,
        "miss_causes": causes,
    }
    if latencies:
        latencies.sort()
        p50 = latencies[min(len(latencies) - 1, int(0.50 * len(latencies)))]
        p95 = latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))]
        summary["request_to_deliver_s"] = {
            "mean": sum(latencies) / len(latencies),
            "p50": p50,
            "p95": p95,
            "max": latencies[-1],
        }
    return summary


def merge_obs(parts: List[Optional[Dict[str, Any]]], span_limit: int = 200_000) -> Optional[Dict[str, Any]]:
    """Merge per-shard ``ObsRecorder.export()`` dicts into one run view.

    Spans and flight events concatenate and re-sort on their sim-time
    stamps (each span already carries its ``shard`` tag), postmortems
    concatenate, metrics merge via :func:`merge_metrics`, and the trace
    summary is recomputed over the combined span stream so cross-shard
    journeys count once.  Returns ``None`` when no shard exported obs.

    The span re-sort tie-breaks equal sim timestamps on ``(trace, seq)``
    — virtual-clock shards routinely stamp many spans at the same sim
    instant, and Python's stable sort would otherwise leave their order
    at the mercy of shard arrival order, making merged reports differ
    run-to-run.  Flight events tie-break on their shard tag.
    """
    parts = [p for p in parts if p]
    if not parts:
        return None
    spans: List[Dict[str, Any]] = []
    flight: List[Dict[str, Any]] = []
    postmortems: List[Dict[str, Any]] = []
    dropped = 0
    for part in parts:
        spans.extend(part.get("spans", ()))
        flight.extend(part.get("flight", ()))
        postmortems.extend(part.get("postmortems", ()))
        dropped += part.get("spans_dropped", 0)
    spans.sort(key=lambda s: (s.get("t", 0.0), s.get("trace", 0), s.get("seq", 0)))
    flight.sort(key=lambda s: (s.get("t", 0.0), s.get("shard") or 0))
    if len(spans) > span_limit:
        dropped += len(spans) - span_limit
        spans = spans[:span_limit]
    merged: Dict[str, Any] = {
        "shards": sorted({p.get("shard") for p in parts if p.get("shard") is not None}),
        "metrics": merge_metrics(p.get("metrics", {}) for p in parts),
        "spans": spans,
        "flight": flight,
        "postmortems": postmortems,
        "spans_dropped": dropped,
        "traces": summarize_traces(spans),
    }
    flows = merge_flows(p.get("flows") for p in parts)
    if flows is not None:
        merged["flows"] = flows
    topo = merge_topo(p.get("topo") for p in parts)
    if topo is not None:
        merged["topo"] = topo
    socket_links = [row for p in parts for row in p.get("socket_links", ())]
    if socket_links:
        merged["socket_links"] = sorted(
            socket_links,
            key=lambda r: (r.get("src_shard", 0), r.get("dst_shard", 0)),
        )
    return merged
