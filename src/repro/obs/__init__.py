"""The observability plane: metrics, segment-journey traces, flight recorder.

Opt-in instrumentation for the live runtime and the cluster
(``docs/observability.md``).  Pass an :class:`ObsConfig` to
``LiveSwarm``/``run_swarm``/``run_cluster`` (CLI: ``--obs`` /
``--metrics-out``) and the run exports ``RuntimeResult.obs``: a
per-period metric registry, sampled request→ship→deliver→play/miss
trace spans that cross shard sockets, and flight-recorder postmortems
dumped on stalls, shard death or crashes.  Disabled (the default), the
plane is the no-op :data:`NULL_OBS` and runs are bit-identical to an
uninstrumented build.
"""

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    merge_metrics,
    merge_obs,
    summarize_traces,
)
from repro.obs.recorder import NULL_OBS, NullObs, ObsConfig, ObsRecorder
from repro.obs.report import (
    format_postmortems,
    load_obs_jsonl,
    render_report,
    write_obs_jsonl,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NullObs",
    "ObsConfig",
    "ObsRecorder",
    "format_postmortems",
    "load_obs_jsonl",
    "merge_metrics",
    "merge_obs",
    "render_report",
    "summarize_traces",
    "write_obs_jsonl",
]
