"""The observability plane: metrics, traces, flight recorder, live telemetry.

Opt-in instrumentation for the live runtime and the cluster
(``docs/observability.md``).  Pass an :class:`ObsConfig` to
``LiveSwarm``/``run_swarm``/``run_cluster`` (CLI: ``--obs`` /
``--metrics-out``) and the run exports ``RuntimeResult.obs``: a
per-period metric registry, sampled request→ship→deliver→play/miss
trace spans that cross shard sockets, and flight-recorder postmortems
dumped on stalls, shard death or crashes.  Disabled (the default), the
plane is the no-op :data:`NULL_OBS` and runs are bit-identical to an
uninstrumented build.

On top of the recorder sits the live plane: shards stream uncharged
``TelemetryFrame``s to the coordinator every period, a
:class:`HealthEngine` folds them into run-level SLO verdicts (``--slo``
aborts on budget burn via :class:`SloViolation`), and the stream feeds
``--telemetry-out`` JSONL + Prometheus exposition files and the
``obs --live`` :class:`Cockpit`.
"""

from repro.obs.diff import diff_obs, render_diff
from repro.obs.flows import FlowMatrix, merge_flows
from repro.obs.health import (
    Alert,
    HealthEngine,
    SloSpec,
    SloViolation,
    parse_slo,
)
from repro.obs.live import (
    Cockpit,
    TelemetryWriter,
    load_telemetry_jsonl,
    run_live,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    merge_metrics,
    merge_obs,
    summarize_traces,
)
from repro.obs.recorder import NULL_OBS, NullObs, ObsConfig, ObsRecorder
from repro.obs.topo import TopologyObserver, merge_topo
from repro.obs.report import (
    format_postmortems,
    load_obs_jsonl,
    render_report,
    write_obs_jsonl,
)

__all__ = [
    "Alert",
    "Cockpit",
    "FlowMatrix",
    "HealthEngine",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NullObs",
    "ObsConfig",
    "ObsRecorder",
    "SloSpec",
    "SloViolation",
    "TelemetryWriter",
    "TopologyObserver",
    "diff_obs",
    "format_postmortems",
    "load_obs_jsonl",
    "load_telemetry_jsonl",
    "merge_flows",
    "merge_metrics",
    "merge_obs",
    "merge_topo",
    "parse_slo",
    "render_diff",
    "render_report",
    "run_live",
    "summarize_traces",
    "write_obs_jsonl",
]
